"""Stability detection in the adversarial-queuing sense.

A policy is *stable* for a network if buffer sizes stay bounded by a
constant independent of the input stream length ([11], §1.1).  We
detect (in)stability empirically: run with a doubling horizon and check
whether the running maximum keeps growing.  Local FIE is the canonical
unstable example ([21], experiment E1): its far-end buffer grows ≈ t/2
forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adversaries.base import Adversary
from ..network.engine_fast import PathEngine
from ..policies.base import ForwardingPolicy

__all__ = ["StabilityVerdict", "probe_stability"]


@dataclass(frozen=True)
class StabilityVerdict:
    """Outcome of a doubling-horizon stability probe."""

    stable: bool
    horizons: tuple[int, ...]
    max_heights: tuple[int, ...]
    growth_rate: float  # packets of extra height per extra step, tail

    @property
    def final_max(self) -> int:
        return self.max_heights[-1]


def probe_stability(
    n: int,
    policy: ForwardingPolicy,
    adversary: Adversary,
    *,
    base_horizon: int | None = None,
    doublings: int = 4,
    tolerance: int = 1,
) -> StabilityVerdict:
    """Run with doubling horizons; unstable iff the max keeps climbing.

    ``tolerance`` allows the running maximum to creep by that many
    packets per doubling without being flagged (slow convergence to a
    bounded worst case looks like tiny residual growth).
    """
    if doublings < 2:
        raise ValueError("need at least 2 doublings to compare")
    base = 4 * n if base_horizon is None else base_horizon
    engine = PathEngine(n, policy, adversary)
    horizons: list[int] = []
    maxima: list[int] = []
    total = 0
    for d in range(doublings):
        target = base * (2**d)
        engine.run(target - total)
        total = target
        horizons.append(total)
        maxima.append(engine.max_height)

    last_growth = maxima[-1] - maxima[-2]
    steps_delta = horizons[-1] - horizons[-2]
    stable = last_growth <= tolerance
    return StabilityVerdict(
        stable=stable,
        horizons=tuple(horizons),
        max_heights=tuple(maxima),
        growth_rate=last_growth / steps_delta if steps_delta else 0.0,
    )
