"""Stability detection in the adversarial-queuing sense.

A policy is *stable* for a network if buffer sizes stay bounded by a
constant independent of the input stream length ([11], §1.1).  We
detect (in)stability empirically: run with a doubling horizon and check
whether the running maximum keeps growing.  Local FIE is the canonical
unstable example ([21], experiment E1): its far-end buffer grows ≈ t/2
forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..adversaries.base import Adversary
from ..network.engine_fast import PathEngine
from ..policies.base import ForwardingPolicy

__all__ = ["StabilityVerdict", "probe_stability", "probe_stability_suite"]


@dataclass(frozen=True)
class StabilityVerdict:
    """Outcome of a doubling-horizon stability probe."""

    stable: bool
    horizons: tuple[int, ...]
    max_heights: tuple[int, ...]
    growth_rate: float  # packets of extra height per extra step, tail

    @property
    def final_max(self) -> int:
        return self.max_heights[-1]


def probe_stability(
    n: int,
    policy: ForwardingPolicy,
    adversary: Adversary,
    *,
    base_horizon: int | None = None,
    doublings: int = 4,
    tolerance: int = 1,
) -> StabilityVerdict:
    """Run with doubling horizons; unstable iff the max keeps climbing.

    ``tolerance`` allows the running maximum to creep by that many
    packets per doubling without being flagged (slow convergence to a
    bounded worst case looks like tiny residual growth).
    """
    if doublings < 2:
        raise ValueError("need at least 2 doublings to compare")
    base = 4 * n if base_horizon is None else base_horizon
    engine = PathEngine(n, policy, adversary)
    horizons: list[int] = []
    maxima: list[int] = []
    total = 0
    for d in range(doublings):
        target = base * (2**d)
        engine.run(target - total)
        total = target
        horizons.append(total)
        maxima.append(engine.max_height)

    last_growth = maxima[-1] - maxima[-2]
    steps_delta = horizons[-1] - horizons[-2]
    stable = last_growth <= tolerance
    return StabilityVerdict(
        stable=stable,
        horizons=tuple(horizons),
        max_heights=tuple(maxima),
        growth_rate=last_growth / steps_delta if steps_delta else 0.0,
    )


def probe_stability_suite(
    n: int,
    policy_factory: Callable[[], ForwardingPolicy],
    adversaries: Sequence[Adversary],
    *,
    base_horizon: int | None = None,
    doublings: int = 4,
    tolerance: int = 1,
) -> list[StabilityVerdict]:
    """One doubling-horizon probe per adversary, advanced as a fleet.

    Equivalent to calling :func:`probe_stability` once per adversary
    with a fresh ``policy_factory()`` policy, but the whole suite runs
    in lockstep on a single
    :class:`~repro.network.fleet_engine.FleetEngine` — the per-run
    maxima are read off the fleet's metric vectors after each doubling,
    so a k-adversary probe costs one engine, not k.  Verdicts are
    returned in adversary order.
    """
    from ..network.fleet_engine import FleetEngine

    if doublings < 2:
        raise ValueError("need at least 2 doublings to compare")
    base = 4 * n if base_horizon is None else base_horizon
    fleet = FleetEngine(n, policy_factory(), list(adversaries))
    horizons: list[int] = []
    maxima: list[tuple[int, ...]] = []  # per doubling: per-run maxima
    total = 0
    for d in range(doublings):
        target = base * (2**d)
        fleet.run(target - total)
        total = target
        horizons.append(total)
        maxima.append(tuple(int(m) for m in fleet.max_heights))

    steps_delta = horizons[-1] - horizons[-2]
    verdicts: list[StabilityVerdict] = []
    for r in range(len(adversaries)):
        per_run = tuple(m[r] for m in maxima)
        last_growth = per_run[-1] - per_run[-2]
        verdicts.append(
            StabilityVerdict(
                stable=last_growth <= tolerance,
                horizons=tuple(horizons),
                max_heights=per_run,
                growth_rate=(
                    last_growth / steps_delta if steps_delta else 0.0
                ),
            )
        )
    return verdicts
