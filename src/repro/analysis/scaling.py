"""Growth-law fitting and classification.

The paper's claims are asymptotic (Θ(log n), Θ(√n), Θ(n)).  The
experiment harness therefore measures max buffer heights over an n
sweep and *classifies the growth law* rather than comparing absolute
constants: a reproduction matches the paper if Odd-Even fits the
logarithmic family, Downhill-or-Flat the power family with exponent
≈ ½, and Greedy the power family with exponent ≈ 1.

Fits are least squares via :func:`scipy.stats.linregress` on the
appropriate transform:

* power law ``y = a·n^b`` — linear in log-log space;
* logarithmic law ``y = a + b·log₂ n`` — linear in semilog space.

Model selection compares the two families' residuals on equal footing
(R² of the transformed fit evaluated back in linear space).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np
from scipy import stats

__all__ = ["GrowthClass", "PowerFit", "LogFit", "fit_power", "fit_log",
           "classify_growth"]


class GrowthClass(Enum):
    LOGARITHMIC = "logarithmic"
    SQRT = "sqrt"
    LINEAR = "linear"
    POWER = "power"
    CONSTANT = "constant"


@dataclass(frozen=True)
class PowerFit:
    """y ≈ coefficient · n^exponent."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, n: np.ndarray | float) -> np.ndarray | float:
        return self.coefficient * np.asarray(n, dtype=float) ** self.exponent


@dataclass(frozen=True)
class LogFit:
    """y ≈ intercept + slope · log₂ n."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, n: np.ndarray | float) -> np.ndarray | float:
        return self.intercept + self.slope * np.log2(np.asarray(n, dtype=float))


def _as_positive_arrays(ns, ys) -> tuple[np.ndarray, np.ndarray]:
    ns = np.asarray(ns, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if ns.shape != ys.shape or ns.ndim != 1:
        raise ValueError("ns and ys must be 1-D arrays of equal length")
    if ns.size < 3:
        raise ValueError("need at least 3 sweep points to fit a growth law")
    if (ns <= 0).any():
        raise ValueError("sizes must be positive")
    return ns, ys


def fit_power(ns, ys) -> PowerFit:
    """Fit ``y = a·n^b`` by log-log regression (y clipped to ≥ 1)."""
    ns, ys = _as_positive_arrays(ns, ys)
    ys = np.maximum(ys, 1.0)
    res = stats.linregress(np.log(ns), np.log(ys))
    return PowerFit(
        exponent=float(res.slope),
        coefficient=float(np.exp(res.intercept)),
        r_squared=float(res.rvalue**2),
    )


def fit_log(ns, ys) -> LogFit:
    """Fit ``y = a + b·log₂ n`` by semilog regression."""
    ns, ys = _as_positive_arrays(ns, ys)
    res = stats.linregress(np.log2(ns), ys)
    return LogFit(
        slope=float(res.slope),
        intercept=float(res.intercept),
        r_squared=float(res.rvalue**2),
    )


def classify_growth(
    ns,
    ys,
    *,
    sqrt_tolerance: float = 0.18,
    linear_tolerance: float = 0.18,
) -> tuple[GrowthClass, PowerFit, LogFit]:
    """Classify a measured sweep into a growth family.

    Returns the chosen class together with both fits so callers can
    report the numbers.  Heuristics: a flat series is CONSTANT; if the
    log model explains the data clearly better than the power model the
    series is LOGARITHMIC; otherwise the power exponent decides between
    SQRT (≈ 0.5), LINEAR (≈ 1) and generic POWER.
    """
    ns, ys = _as_positive_arrays(ns, ys)
    if np.allclose(ys, ys[0]):
        return (
            GrowthClass.CONSTANT,
            PowerFit(0.0, float(ys[0]), 1.0),
            LogFit(0.0, float(ys[0]), 1.0),
        )
    p = fit_power(ns, ys)
    l = fit_log(ns, ys)

    # residual comparison in linear space
    rss_p = float(np.sum((p.predict(ns) - ys) ** 2))
    rss_l = float(np.sum((l.predict(ns) - ys) ** 2))
    if rss_l < rss_p and p.exponent < 0.25:
        return GrowthClass.LOGARITHMIC, p, l
    if abs(p.exponent - 0.5) <= sqrt_tolerance:
        return GrowthClass.SQRT, p, l
    if abs(p.exponent - 1.0) <= linear_tolerance:
        return GrowthClass.LINEAR, p, l
    if p.exponent < 0.25 and rss_l <= rss_p * 1.5:
        return GrowthClass.LOGARITHMIC, p, l
    return GrowthClass.POWER, p, l
