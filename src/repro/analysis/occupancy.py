"""Occupancy summaries and worst-case sweeps.

The canonical measurement of every experiment: run a (policy,
adversary) pair on a path of ``n`` nodes for a step budget and report
the maximum height; run a whole *suite* of adversaries and keep the
worst — the empirical analogue of the paper's "for any input stream".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..adversaries.base import Adversary
from ..network.engine_fast import PathEngine
from ..policies.base import ForwardingPolicy

__all__ = ["OccupancyResult", "measure_path", "measure_tree",
           "worst_case_over_suite", "default_step_budget",
           "profile_snapshot"]


@dataclass(frozen=True)
class OccupancyResult:
    """Max-height measurement for one (policy, adversary, n) triple."""

    policy: str
    adversary: str
    n: int
    steps: int
    max_height: int
    argmax_node: int
    argmax_step: int
    injected: int
    delivered: int


def default_step_budget(n: int, multiplier: int = 16) -> int:
    """A step budget that lets worst cases develop: the linear
    baselines need Θ(n) steps to pile Θ(n) packets, the √n baselines
    Θ(n) as well; ``multiplier``·n covers every family comfortably."""
    return multiplier * n


def measure_path(
    n: int,
    policy: ForwardingPolicy,
    adversary: Adversary,
    steps: int | None = None,
    *,
    capacity: int = 1,
    decision_timing: str = "pre_injection",
) -> OccupancyResult:
    """Run one configuration on the fast path engine and summarise."""
    steps = default_step_budget(n) if steps is None else steps
    engine = PathEngine(
        n,
        policy,
        adversary,
        capacity=capacity,
        decision_timing=decision_timing,
    )
    engine.run(steps)
    t = engine.metrics.tracker
    return OccupancyResult(
        policy=policy.name,
        adversary=adversary.name,
        n=n,
        steps=steps,
        max_height=t.max_height,
        argmax_node=t.argmax_node,
        argmax_step=t.argmax_step,
        injected=engine.metrics.injected,
        delivered=engine.metrics.delivered,
    )


def measure_tree(
    topology,
    policy: ForwardingPolicy,
    adversary: Adversary,
    steps: int | None = None,
    *,
    decision_timing: str = "pre_injection",
) -> OccupancyResult:
    """Tree counterpart of :func:`measure_path` (packet simulator)."""
    from ..network.simulator import Simulator

    steps = default_step_budget(topology.n) if steps is None else steps
    sim = Simulator(
        topology,
        policy,
        adversary,
        decision_timing=decision_timing,
        validate=False,
    )
    sim.run(steps)
    t = sim.metrics.tracker
    return OccupancyResult(
        policy=policy.name,
        adversary=adversary.name,
        n=topology.n,
        steps=steps,
        max_height=t.max_height,
        argmax_node=t.argmax_node,
        argmax_step=t.argmax_step,
        injected=sim.metrics.injected,
        delivered=sim.metrics.delivered,
    )


def worst_case_over_suite(
    n: int,
    policy_factory: Callable[[], ForwardingPolicy],
    adversaries: Sequence[Adversary],
    steps: int | None = None,
    *,
    decision_timing: str = "pre_injection",
) -> OccupancyResult:
    """Max-height over a suite of adversaries (fresh policy per run).

    Returns the single worst :class:`OccupancyResult` — the empirical
    lower envelope of the policy's worst-case buffer requirement.

    The whole suite advances in lockstep on one
    :class:`~repro.network.fleet_engine.FleetEngine` (one ``(runs, n)``
    matrix, one set of numpy ops per step); adaptive adversaries fall
    back to dedicated per-run engines inside the fleet, so results are
    bit-identical to measuring each adversary alone — first-listed
    adversary still wins height ties.
    """
    from ..network.fleet_engine import FleetEngine

    if not adversaries:
        raise ValueError("need at least one adversary")
    steps = default_step_budget(n) if steps is None else steps
    policy = policy_factory()
    fleet = FleetEngine(
        n, policy, list(adversaries), decision_timing=decision_timing
    )
    fleet.run(steps)
    best: OccupancyResult | None = None
    for r, adv in enumerate(adversaries):
        rr = fleet.result(r)
        res = OccupancyResult(
            policy=policy.name,
            adversary=adv.name,
            n=n,
            steps=steps,
            max_height=rr.max_height,
            argmax_node=rr.argmax_node,
            argmax_step=rr.argmax_step,
            injected=rr.injected,
            delivered=rr.delivered,
        )
        if best is None or res.max_height > best.max_height:
            best = res
    assert best is not None
    return best


def profile_snapshot(engine: PathEngine) -> np.ndarray:
    """Current height profile by position (copy, sink included)."""
    return engine.heights.copy()
