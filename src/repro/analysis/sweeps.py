"""Structured parameter sweeps.

A :class:`SweepGrid` runs every (policy, adversary, n) combination of a
grid on the fast path engine and collects tidy records — the backbone
for custom studies outside the packaged experiments (see
``examples/buffer_provisioning_study.py``).  Results export to CSV and
group-reduce for growth-law fitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from .occupancy import measure_path
from .scaling import GrowthClass, classify_growth
from .tables import format_table, rows_to_csv
from ..adversaries.base import Adversary
from ..policies.base import ForwardingPolicy

__all__ = ["SweepRecord", "SweepResult", "SweepGrid"]


@dataclass(frozen=True)
class SweepRecord:
    """One grid cell's measurement."""

    policy: str
    adversary: str
    n: int
    steps: int
    max_height: int


@dataclass
class SweepResult:
    """All records of a sweep plus reduction helpers."""

    records: list[SweepRecord] = field(default_factory=list)

    HEADERS = ("policy", "adversary", "n", "steps", "max_height")

    def rows(self) -> list[list]:
        return [
            [r.policy, r.adversary, r.n, r.steps, r.max_height]
            for r in self.records
        ]

    def to_csv(self) -> str:
        return rows_to_csv(self.HEADERS, self.rows())

    def to_table(self, title: str | None = None) -> str:
        return format_table(self.HEADERS, self.rows(), title=title)

    # ------------------------------------------------------------------
    def worst_by_policy_and_n(self) -> dict[tuple[str, int], int]:
        """Max over adversaries for each (policy, n)."""
        out: dict[tuple[str, int], int] = {}
        for r in self.records:
            key = (r.policy, r.n)
            out[key] = max(out.get(key, 0), r.max_height)
        return out

    def growth_by_policy(self) -> dict[str, tuple[GrowthClass, float]]:
        """Classify each policy's worst-case growth over the n sweep.

        Returns policy → (growth class, fitted power exponent).
        Policies measured at fewer than 3 sizes are skipped.
        """
        worst = self.worst_by_policy_and_n()
        per_policy: dict[str, dict[int, int]] = {}
        for (policy, n), h in worst.items():
            per_policy.setdefault(policy, {})[n] = h
        out: dict[str, tuple[GrowthClass, float]] = {}
        for policy, series in per_policy.items():
            if len(series) < 3:
                continue
            ns = sorted(series)
            cls, power, _ = classify_growth(ns, [series[n] for n in ns])
            out[policy] = (cls, power.exponent)
        return out


class SweepGrid:
    """Cartesian sweep over policies × adversaries × sizes.

    Factories (not instances) are taken for both axes so every cell
    runs fresh, stateless objects.
    """

    def __init__(
        self,
        policies: Sequence[Callable[[], ForwardingPolicy]],
        adversaries: Sequence[Callable[[], Adversary]],
        ns: Iterable[int],
        *,
        steps_factor: int = 16,
        decision_timing: str = "pre_injection",
    ) -> None:
        if steps_factor < 1:
            raise ValueError("steps_factor must be >= 1")
        self.policies = list(policies)
        self.adversaries = list(adversaries)
        self.ns = sorted(set(int(n) for n in ns))
        self.steps_factor = int(steps_factor)
        self.decision_timing = decision_timing
        if not (self.policies and self.adversaries and self.ns):
            raise ValueError("grid axes must be non-empty")

    def cell_count(self) -> int:
        return len(self.policies) * len(self.adversaries) * len(self.ns)

    def run(
        self, progress: Callable[[SweepRecord], None] | None = None
    ) -> SweepResult:
        """Execute every cell; ``progress`` is called per record."""
        result = SweepResult()
        for n in self.ns:
            steps = self.steps_factor * n
            for make_policy in self.policies:
                for make_adv in self.adversaries:
                    occ = measure_path(
                        n,
                        make_policy(),
                        make_adv(),
                        steps,
                        decision_timing=self.decision_timing,
                    )
                    rec = SweepRecord(
                        policy=occ.policy,
                        adversary=occ.adversary,
                        n=n,
                        steps=steps,
                        max_height=occ.max_height,
                    )
                    result.records.append(rec)
                    if progress is not None:
                        progress(rec)
        return result
