"""Packet-delay measurement (experiment E12).

The paper's conclusion poses the delay characteristics of Odd-Even as
an open research direction; this module provides the measurement
harness.  Delays require packet identity, so these runs use the
packet-tracking :class:`~repro.network.simulator.Simulator` rather than
the height-only fast engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adversaries.base import Adversary
from ..network.buffers import Discipline
from ..network.simulator import Simulator
from ..network.topology import Topology, path
from ..policies.base import ForwardingPolicy

__all__ = ["DelayResult", "measure_delays"]


@dataclass(frozen=True)
class DelayResult:
    """Delay statistics for one (policy, adversary) run."""

    policy: str
    adversary: str
    n: int
    steps: int
    delivered: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    max_height: int

    @property
    def per_hop_mean(self) -> float:
        """Mean delay normalised by a crude mean route length (n/2)."""
        return self.mean / max(self.n / 2.0, 1.0)


def measure_delays(
    n_or_topology: int | Topology,
    policy: ForwardingPolicy,
    adversary: Adversary,
    steps: int,
    *,
    discipline: Discipline | str = Discipline.FIFO,
    decision_timing: str = "pre_injection",
    drain: bool = True,
) -> DelayResult:
    """Run the packet engine and summarise delays of delivered packets.

    With ``drain=True`` the adversary is silenced after ``steps`` and
    the network runs until (almost) empty, so slow stragglers are
    counted instead of censored.
    """
    topo = path(n_or_topology) if isinstance(n_or_topology, int) else n_or_topology
    sim = Simulator(
        topo,
        policy,
        adversary,
        discipline=discipline,
        decision_timing=decision_timing,
    )
    sim.run(steps)
    if drain:
        sim.adversary = None
        # a packet needs at most depth + total-backlog steps to drain
        budget = int(topo.height + sim.heights.sum()) * 4 + 8
        for _ in range(budget):
            if sim.heights.sum() == 0:
                break
            sim.step()
    s = sim.metrics.delays.summary()
    return DelayResult(
        policy=policy.name,
        adversary=adversary.name,
        n=topo.n,
        steps=steps,
        delivered=int(s["count"]),
        mean=s["mean"],
        p50=s["p50"],
        p95=s["p95"],
        p99=s["p99"],
        max=s["max"],
        max_height=sim.max_height,
    )
