"""Replication statistics for stochastic workloads.

Adversarial results in this library are deterministic, but the
average-case comparisons (uniform/hot-spot traffic, E1/E12 context) are
seed-dependent.  This module runs a measurement across seeds and
reports mean, standard deviation and a normal-approximation confidence
interval — enough to state "Odd-Even's average occupancy under uniform
traffic is x ± y" honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as sps

__all__ = ["Replication", "replicate", "replicate_max_height"]


@dataclass(frozen=True)
class Replication:
    """Summary of one metric across seeds."""

    values: tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def n(self) -> int:
        return len(self.values)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.2f} ± {(self.ci_high - self.ci_low) / 2:.2f} "
            f"({int(self.confidence * 100)}% CI, n={self.n})"
        )


def replicate(
    measure: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> Replication:
    """Run ``measure(seed)`` per seed and summarise.

    Uses the t-distribution for the interval (appropriate for the small
    seed counts typical here).
    """
    if len(seeds) < 2:
        raise ValueError("need at least 2 seeds for an interval")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    values = np.asarray([float(measure(s)) for s in seeds])
    mean = float(values.mean())
    std = float(values.std(ddof=1))
    sem = std / np.sqrt(values.size)
    if std == 0.0:
        lo = hi = mean
    else:
        lo, hi = sps.t.interval(
            confidence, df=values.size - 1, loc=mean, scale=sem
        )
    return Replication(
        values=tuple(float(v) for v in values),
        mean=mean,
        std=std,
        ci_low=float(lo),
        ci_high=float(hi),
        confidence=confidence,
    )


def replicate_max_height(
    n: int,
    policy_factory,
    adversary_factory: Callable[[int], "object"],
    steps: int,
    seeds: Sequence[int] = tuple(range(10)),
    confidence: float = 0.95,
) -> Replication:
    """Max-height across seeds on the fast path engine.

    ``adversary_factory(seed)`` builds the seeded traffic source.
    """
    from ..network.engine_fast import PathEngine

    def measure(seed: int) -> float:
        engine = PathEngine(n, policy_factory(), adversary_factory(seed))
        engine.run(steps)
        return float(engine.max_height)

    return replicate(measure, seeds, confidence)
