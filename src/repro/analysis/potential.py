"""Exponential-potential diagnostics.

The attachment-scheme proof says, informally, that a node of height h
"costs" the adversary 2^(h-2) other nodes.  The natural Lyapunov view
of the same fact is the potential

    Φ(C) = Σ_v (2^h(v) − 1)

A policy admits an O(log n) worst case iff the adversary cannot pump Φ
past poly(n): max height m implies Φ ≥ 2^m − 1, so Φ ≤ P(n) gives
m ≤ log₂(P(n) + 1).  This module tracks Φ along a run — a cheap,
certifier-free *diagnostic* of how a policy's worst case is trending,
and a neat visual of the difference between Odd-Even (Φ stays ≈ linear
in n) and greedy (Φ explodes exponentially under the seesaw).

This is an analysis aid built on the paper's cost intuition, not a
statement from the paper itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..adversaries.base import Adversary
from ..network.engine_fast import PathEngine
from ..policies.base import ForwardingPolicy

__all__ = ["potential", "PotentialTrace", "trace_potential"]


def potential(heights: np.ndarray, base: float = 2.0) -> float:
    """Φ(C) = Σ (base^h − 1) over all nodes (0 for the empty config)."""
    h = np.asarray(heights, dtype=np.float64)
    if base <= 1.0:
        raise ValueError("base must exceed 1")
    return float((base**h - 1.0).sum())


@dataclass(frozen=True)
class PotentialTrace:
    """Sampled potential along one run."""

    steps: tuple[int, ...]
    values: tuple[float, ...]
    max_height: int
    n: int

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def peak_per_node(self) -> float:
        """Φ/n at the peak — O(1) for Odd-Even, exponential for the
        linear-family baselines under their worst cases."""
        return self.peak / self.n

    def implied_height_bound(self) -> float:
        """log₂(peak + 1): any height the run reached is below this."""
        return float(np.log2(self.peak + 1.0)) if self.peak > 0 else 0.0


def trace_potential(
    n: int,
    policy: ForwardingPolicy,
    adversary: Adversary,
    steps: int,
    *,
    sample_every: int = 1,
    base: float = 2.0,
) -> PotentialTrace:
    """Run on the fast path engine, sampling Φ every ``sample_every``
    steps."""
    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    engine = PathEngine(n, policy, adversary)
    xs: list[int] = []
    ys: list[float] = []
    for t in range(steps):
        engine.step()
        if t % sample_every == 0:
            xs.append(t + 1)
            ys.append(potential(engine.heights, base))
    return PotentialTrace(
        steps=tuple(xs),
        values=tuple(ys),
        max_height=engine.max_height,
        n=n,
    )
