"""Measurement and analysis utilities: occupancy sweeps, growth-law
fitting, stability probes, delay statistics, report tables."""

from .compare import PolicyComparison, compare_under_frozen_tape
from .delay import DelayResult, measure_delays
from .potential import PotentialTrace, potential, trace_potential
from .replication import Replication, replicate, replicate_max_height
from .occupancy import (
    OccupancyResult,
    default_step_budget,
    measure_path,
    measure_tree,
    profile_snapshot,
    worst_case_over_suite,
)
from .scaling import (
    GrowthClass,
    LogFit,
    PowerFit,
    classify_growth,
    fit_log,
    fit_power,
)
from .stability import StabilityVerdict, probe_stability, probe_stability_suite
from .sweeps import SweepGrid, SweepRecord, SweepResult
from .tables import format_kv, format_table, rows_to_csv

__all__ = [
    "PolicyComparison",
    "compare_under_frozen_tape",
    "DelayResult",
    "measure_delays",
    "OccupancyResult",
    "default_step_budget",
    "measure_path",
    "measure_tree",
    "profile_snapshot",
    "worst_case_over_suite",
    "GrowthClass",
    "LogFit",
    "PowerFit",
    "classify_growth",
    "fit_log",
    "fit_power",
    "StabilityVerdict",
    "probe_stability",
    "probe_stability_suite",
    "SweepGrid",
    "SweepRecord",
    "SweepResult",
    "Replication",
    "replicate",
    "replicate_max_height",
    "PotentialTrace",
    "potential",
    "trace_potential",
    "format_kv",
    "format_table",
    "rows_to_csv",
]
