"""Plain-text table rendering for experiment reports.

No external table/plot dependencies are available offline, so the
experiment harness prints aligned ASCII tables and writes CSV files;
both live here so every experiment reports in the same format.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Sequence

__all__ = ["format_table", "rows_to_csv", "format_kv"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Numeric columns are right-aligned, text columns left-aligned.
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    headers = [str(h) for h in headers]
    ncols = len(headers)
    for row in cells:
        if len(row) != ncols:
            raise ValueError("row width does not match header width")

    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [
        all(_is_numeric(row[i]) for row in cells) if cells else False
        for i in range(ncols)
    ]

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in cells)
    return "\n".join(lines)


def _is_numeric(s: str) -> bool:
    try:
        float(s)
        return True
    except ValueError:
        return False


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Serialise rows as CSV text (for EXPERIMENTS.md artefacts)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    writer.writerows(rows)
    return buf.getvalue()


def format_kv(pairs: dict[str, Any], *, title: str | None = None) -> str:
    """Render a key/value block (experiment parameter summaries)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs.items():
        lines.append(f"{k.ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)
