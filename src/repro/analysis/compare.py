"""Frozen-tape policy comparison (fair A/B under identical traffic).

An adaptive adversary's injections depend on the policy it plays
against, so "policy A saw max 3, policy B saw max 120" can conflate the
policy difference with the traffic difference.  This module removes the
confound: it records the adversary's actual tape against a *reference*
policy, then replays the identical injections against every candidate
and reports occupancy and delay side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .delay import measure_delays
from ..adversaries.base import Adversary
from ..adversaries.replay import RecordingAdversary, ReplayAdversary
from ..network.engine_fast import PathEngine
from ..policies.base import ForwardingPolicy

__all__ = ["PolicyComparison", "compare_under_frozen_tape"]


@dataclass(frozen=True)
class PolicyComparison:
    """One policy's outcome under the frozen tape."""

    policy: str
    max_height: int
    delivered: int
    mean_delay: float
    p95_delay: float
    max_delay: float


def compare_under_frozen_tape(
    n: int,
    reference_policy: ForwardingPolicy,
    adversary: Adversary,
    candidates: Sequence[ForwardingPolicy],
    steps: int,
    *,
    include_reference: bool = True,
) -> list[PolicyComparison]:
    """Record ``adversary`` against the reference, replay against all.

    Returns one :class:`PolicyComparison` per policy (reference first
    when included), all measured under byte-identical traffic.
    """
    recorder = RecordingAdversary(adversary)
    PathEngine(n, reference_policy, recorder).run(steps)
    tape = recorder.tape

    policies = list(candidates)
    if include_reference:
        policies.insert(0, reference_policy)

    out: list[PolicyComparison] = []
    for policy in policies:
        result = measure_delays(
            n, policy, ReplayAdversary(tape), steps, drain=True
        )
        out.append(
            PolicyComparison(
                policy=policy.name,
                max_height=result.max_height,
                delivered=result.delivered,
                mean_delay=result.mean,
                p95_delay=result.p95,
                max_delay=result.max,
            )
        )
    return out
