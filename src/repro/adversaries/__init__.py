"""Adversarial and stochastic traffic generators (the §2 rate-c model).

Per-step adversaries implement :class:`Adversary`; the Theorem 3.1
attack is an *orchestrating* driver (it rewinds the engine between its
two scenarios) and lives in :mod:`repro.adversaries.lower_bound`.
"""

from .adaptive import (
    BackfillAdversary,
    MaxHeightChaserAdversary,
    PlateauAdversary,
    PressureAdversary,
    SeesawAdversary,
)
from .base import Adversary, NullAdversary, validate_injections
from .composite import AlternatingAdversary, MixtureAdversary
from .deterministic import (
    AmplifiedAdversary,
    FarEndAdversary,
    FixedNodeAdversary,
    PhasedAdversary,
    PreSinkAdversary,
    RoundRobinAdversary,
    ScheduleAdversary,
)
from .lower_bound import (
    AttackReport,
    RecursiveLowerBoundAttack,
    StageReport,
    kept_injection_schedule,
)
from .replay import RecordingAdversary, ReplayAdversary
from .stochastic import (
    HotSpotAdversary,
    OnOffAdversary,
    TokenBucketAdversary,
    UniformRandomAdversary,
)
from .tree_adversaries import (
    HeavyBranchAdversary,
    LeafSweepAdversary,
    SpiderWaveAdversary,
    TreeSeesawAdversary,
)

__all__ = [
    "Adversary",
    "NullAdversary",
    "validate_injections",
    "MixtureAdversary",
    "AlternatingAdversary",
    "AmplifiedAdversary",
    "FarEndAdversary",
    "FixedNodeAdversary",
    "PhasedAdversary",
    "PreSinkAdversary",
    "RoundRobinAdversary",
    "ScheduleAdversary",
    "UniformRandomAdversary",
    "HotSpotAdversary",
    "OnOffAdversary",
    "TokenBucketAdversary",
    "SeesawAdversary",
    "PressureAdversary",
    "PlateauAdversary",
    "MaxHeightChaserAdversary",
    "BackfillAdversary",
    "AttackReport",
    "RecursiveLowerBoundAttack",
    "StageReport",
    "kept_injection_schedule",
    "RecordingAdversary",
    "ReplayAdversary",
    "LeafSweepAdversary",
    "HeavyBranchAdversary",
    "SpiderWaveAdversary",
    "TreeSeesawAdversary",
]
