"""Stochastic traffic generators.

Random workloads are the *average-case* complement to the crafted
worst cases: the paper's bounds are adversarial, and experiments E1 and
E12 also report how the policies behave under benign random traffic.
All generators are seeded and replayable.

The :class:`TokenBucketAdversary` implements the (ρ, σ) injection model
of Miller & Patt-Shamir [21] used by Corollary 3.2 and experiment E10:
over any window of t steps at most ``ρ·t + σ`` packets are injected.
"""

from __future__ import annotations



import numpy as np

from .base import Adversary

from ..network.topology import Topology

__all__ = [
    "UniformRandomAdversary",
    "HotSpotAdversary",
    "OnOffAdversary",
    "TokenBucketAdversary",
]


class UniformRandomAdversary(Adversary):
    """Each step, with probability ``p``, inject at a uniform node."""

    def __init__(self, p: float = 1.0, seed: int | None = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = float(p)
        self.seed = seed
        self.name = f"uniform(p={p})"
        self._rng = np.random.default_rng(seed)
        self._candidates: np.ndarray | None = None

    def reset(self, topology: Topology, capacity: int) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._candidates = np.asarray(
            [v for v in range(topology.n) if v != topology.sink],
            dtype=np.int64,
        )

    def inject(self, step, heights, topology):
        if self._rng.random() >= self.p:
            return ()
        return (int(self._rng.choice(self._candidates)),)

    def inject_schedule(self, start, steps, topology):
        # replayable: the draws below consume the generator in exactly
        # the per-step order of inject(), so batched and per-step runs
        # interleave freely and a fixed seed yields a fixed schedule
        rng = self._rng
        out: list[tuple[int, ...]] = []
        for _ in range(steps):
            if rng.random() >= self.p:
                out.append(())
            else:
                out.append((int(rng.choice(self._candidates)),))
        return out


class HotSpotAdversary(Adversary):
    """Zipf-weighted injections concentrated near one node.

    Node weights decay as ``1/(1 + d)^alpha`` where ``d`` is hop
    distance from the hot node — a crude model of a sensor field with a
    localised event.
    """

    def __init__(self, hot_node: int, alpha: float = 2.0, seed: int | None = None):
        self.hot_node = int(hot_node)
        self.alpha = float(alpha)
        self.seed = seed
        self.name = f"hotspot(node={hot_node},alpha={alpha})"
        self._rng = np.random.default_rng(seed)
        self._nodes: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    def reset(self, topology: Topology, capacity: int) -> None:
        self._rng = np.random.default_rng(self.seed)
        # hop distances from the hot node via successive balls
        dist = np.full(topology.n, -1, dtype=np.int64)
        frontier = {self.hot_node}
        seen = {self.hot_node}
        dist[self.hot_node] = 0
        d = 0
        while frontier:
            d += 1
            nxt: set[int] = set()
            for u in frontier:
                p = int(topology.succ[u])
                neigh = list(topology.children[u])
                if p >= 0:
                    neigh.append(p)
                for w in neigh:
                    if w not in seen:
                        seen.add(w)
                        dist[w] = d
                        nxt.add(w)
            frontier = nxt
        nodes = np.asarray(
            [v for v in range(topology.n) if v != topology.sink],
            dtype=np.int64,
        )
        w = 1.0 / (1.0 + dist[nodes]) ** self.alpha
        self._nodes = nodes
        self._weights = w / w.sum()

    def inject(self, step, heights, topology):
        return (int(self._rng.choice(self._nodes, p=self._weights)),)

    def inject_schedule(self, start, steps, topology):
        # same generator consumption order as steps sequential inject()
        # calls — see UniformRandomAdversary.inject_schedule
        rng = self._rng
        return [
            (int(rng.choice(self._nodes, p=self._weights)),)
            for _ in range(steps)
        ]


class OnOffAdversary(Adversary):
    """Bursty on/off source: ``on`` steps of injections at one node,
    then ``off`` silent steps, repeating."""

    def __init__(self, node: int, on: int, off: int):
        if on < 1 or off < 0:
            raise ValueError("need on >= 1 and off >= 0")
        self.node = int(node)
        self.on = int(on)
        self.off = int(off)
        self.name = f"onoff(node={node},{on}on/{off}off)"

    def inject(self, step, heights, topology):
        phase = step % (self.on + self.off)
        return (self.node,) if phase < self.on else ()

    def inject_schedule(self, start, steps, topology):
        burst, quiet, period = (self.node,), (), self.on + self.off
        return [
            burst if (start + i) % period < self.on else quiet
            for i in range(steps)
        ]


class TokenBucketAdversary(Adversary):
    """(ρ, σ) constraint wrapper: rate ρ with burstiness σ ([21] model).

    Wraps an inner adversary that *proposes* injection sites; the
    bucket releases at most ``tokens`` of them per step, where tokens
    accumulate at rate ρ up to a ceiling of σ + ρ (so any window of t
    steps carries at most ρ·t + σ packets).  The engine's hard per-step
    limit is ``capacity``, so proposals are also clipped there.

    With ``drain_first = True`` the bucket starts full — the adversary
    may open with a σ-burst, the worst case for the σ + 2 bound of the
    centralized algorithm (experiment E10).
    """

    def __init__(
        self,
        inner: Adversary,
        rho: float = 1.0,
        sigma: int = 0,
        drain_first: bool = True,
        greedy: bool = False,
    ):
        if rho <= 0:
            raise ValueError("rho must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.inner = inner
        self.rho = float(rho)
        self.sigma = int(sigma)
        self.drain_first = drain_first
        # greedy: spend every available token each step by repeating the
        # inner adversary's last proposal — this is what turns a
        # single-site proposer into a genuine sigma-burst source.
        self.greedy = greedy
        self.name = f"bucket(rho={rho},sigma={sigma},{inner.name})"
        self._tokens = 0.0
        self._capacity = 1

    def reset(self, topology: Topology, capacity: int) -> None:
        self.inner.reset(topology, capacity)
        self._capacity = capacity
        self._tokens = float(self.sigma) if self.drain_first else 0.0

    def inject(self, step, heights, topology):
        # the ceiling must admit at least one whole token, or a
        # fractional rate (rho < 1) could never release anything
        ceiling = self.sigma + max(self.rho, 1.0)
        self._tokens = min(self._tokens + self.rho, ceiling)
        proposed = list(self.inner.inject(step, heights, topology))
        # _capacity is the engine's injection_limit, which the caller
        # must set to (at least) sigma + ceil(rho) to allow full bursts.
        budget = min(int(self._tokens), self._capacity)
        if self.greedy and proposed and len(proposed) < budget:
            proposed += [proposed[-1]] * (budget - len(proposed))
        allowed = min(budget, len(proposed))
        self._tokens -= allowed
        return tuple(proposed[:allowed])
