"""Record / replay adversaries.

Wrapping any adversary in :class:`RecordingAdversary` captures the
exact injection sequence it produced (including its reactions to the
policy under test); :class:`ReplayAdversary` re-issues a captured tape
verbatim.  This is how a worst case found by an *adaptive* adversary
against one policy can be replayed bit-for-bit against another — a fair
A/B comparison that the adaptive adversary alone cannot provide — and
how failing runs are frozen into regression tests.
"""

from __future__ import annotations

from typing import Sequence

from .base import Adversary
from ..network.topology import Topology

__all__ = ["RecordingAdversary", "ReplayAdversary"]


class RecordingAdversary(Adversary):
    """Delegate to ``inner`` while taping every injection batch."""

    def __init__(self, inner: Adversary):
        self.inner = inner
        self.name = f"rec({inner.name})"
        self.tape: list[tuple[int, ...]] = []

    def reset(self, topology: Topology, capacity: int) -> None:
        self.inner.reset(topology, capacity)
        self.tape = []

    def inject(self, step, heights, topology):
        sites = tuple(self.inner.inject(step, heights, topology))
        self.tape.append(sites)
        return sites

    def to_replay(self) -> "ReplayAdversary":
        """Freeze the tape recorded so far."""
        return ReplayAdversary(self.tape)


class ReplayAdversary(Adversary):
    """Re-issue a taped injection sequence, then go silent."""

    name = "replay"

    def __init__(self, tape: Sequence[Sequence[int]]):
        self.tape = [tuple(batch) for batch in tape]
        self._cursor = 0

    def reset(self, topology: Topology, capacity: int) -> None:
        self._cursor = 0

    def inject(self, step, heights, topology):
        if self._cursor >= len(self.tape):
            return ()
        batch = self.tape[self._cursor]
        self._cursor += 1
        return batch

    def __len__(self) -> int:
        return len(self.tape)
