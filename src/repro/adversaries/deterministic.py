"""Deterministic scripted adversaries.

These are the building blocks of the crafted worst-case workloads: fix
a node, follow a schedule, or chain phases.  All respect the rate
constraint ``≤ c`` injections per step.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .base import Adversary
from ..errors import RateViolation
from ..network.topology import Topology

__all__ = [
    "FixedNodeAdversary",
    "FarEndAdversary",
    "PreSinkAdversary",
    "ScheduleAdversary",
    "PhasedAdversary",
    "RoundRobinAdversary",
    "AmplifiedAdversary",
]


class FixedNodeAdversary(Adversary):
    """Inject ``count`` packets at one node every step (optionally for a
    limited number of steps)."""

    def __init__(self, node: int, count: int = 1, duration: int | None = None):
        self.node = int(node)
        self.count = int(count)
        self.duration = duration
        self.name = f"fixed(node={node},count={count})"
        self._start: int | None = None

    def reset(self, topology: Topology, capacity: int) -> None:
        if self.count > capacity:
            raise RateViolation(
                f"fixed adversary count {self.count} exceeds rate {capacity}"
            )
        self._start = None

    def inject(self, step, heights, topology):
        if self._start is None:
            self._start = step
        if self.duration is not None and step - self._start >= self.duration:
            return ()
        return (self.node,) * self.count

    def inject_schedule(self, start, steps, topology):
        if self._start is None:
            self._start = start
        burst = (self.node,) * self.count
        if self.duration is None:
            return (burst,) * steps
        remaining = max(self.duration - (start - self._start), 0)
        on = min(remaining, steps)
        return (burst,) * on + ((),) * (steps - on)


class FarEndAdversary(Adversary):
    """Inject at a node of maximum depth (the paper's "leftmost node")."""

    name = "far-end"

    def __init__(self, count: int = 1):
        self.count = int(count)
        self._node = -1

    def reset(self, topology: Topology, capacity: int) -> None:
        if self.count > capacity:
            raise RateViolation("far-end count exceeds rate")
        self._node = int(np.argmax(topology.depth))

    def inject(self, step, heights, topology):
        return (self._node,) * self.count

    def inject_schedule(self, start, steps, topology):
        return ((self._node,) * self.count,) * steps


class PreSinkAdversary(Adversary):
    """Inject at a child of the sink (the node one hop from delivery)."""

    name = "pre-sink"

    def __init__(self, count: int = 1):
        self.count = int(count)
        self._node = -1

    def reset(self, topology: Topology, capacity: int) -> None:
        if self.count > capacity:
            raise RateViolation("pre-sink count exceeds rate")
        kids = topology.children[topology.sink]
        if not kids:
            raise RateViolation("sink has no predecessor to inject at")
        self._node = kids[0]

    def inject(self, step, heights, topology):
        return (self._node,) * self.count

    def inject_schedule(self, start, steps, topology):
        return ((self._node,) * self.count,) * steps


class ScheduleAdversary(Adversary):
    """Follow an explicit step → injection-sites script.

    Steps are indexed from the adversary's reset (relative), so a
    schedule can be replayed inside a :class:`PhasedAdversary`.
    Steps absent from the mapping inject nothing.
    """

    name = "scripted"

    def __init__(self, schedule: Mapping[int, Sequence[int]]):
        self.schedule = {int(k): tuple(v) for k, v in schedule.items()}
        self._start: int | None = None

    def reset(self, topology: Topology, capacity: int) -> None:
        self._start = None

    def inject(self, step, heights, topology):
        if self._start is None:
            self._start = step
        return self.schedule.get(step - self._start, ())

    def inject_schedule(self, start, steps, topology):
        if self._start is None:
            self._start = start
        rel = start - self._start
        return [self.schedule.get(rel + i, ()) for i in range(steps)]


class PhasedAdversary(Adversary):
    """Chain sub-adversaries: run each for a fixed number of steps.

    The classic anti-greedy *seesaw* is
    ``PhasedAdversary([(n, FarEndAdversary()), (n, PreSinkAdversary())])``.
    The final phase runs forever.
    """

    name = "phased"

    def __init__(self, phases: Sequence[tuple[int, Adversary]]):
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = list(phases)
        self._start: int | None = None
        self._bounds: list[int] = []

    def reset(self, topology: Topology, capacity: int) -> None:
        self._start = None
        self._bounds = []
        acc = 0
        for dur, sub in self.phases:
            acc += int(dur)
            self._bounds.append(acc)
            sub.reset(topology, capacity)

    def inject(self, step, heights, topology):
        if self._start is None:
            self._start = step
        rel = step - self._start
        for bound, (dur, sub) in zip(self._bounds, self.phases):
            if rel < bound:
                return sub.inject(step, heights, topology)
        return self.phases[-1][1].inject(step, heights, topology)


class AmplifiedAdversary(Adversary):
    """Repeat an inner adversary's proposals ``factor`` times per step.

    Turns the rate-1 crafted workloads into rate-c workloads for the
    higher-rate experiments (E16): each proposed site receives
    ``factor`` packets, clipped to the engine's rate limit.
    """

    def __init__(self, inner: Adversary, factor: int):
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.inner = inner
        self.factor = int(factor)
        self.name = f"x{factor}({inner.name})"
        self._limit = factor

    def reset(self, topology: Topology, capacity: int) -> None:
        self._limit = capacity
        self.inner.reset(topology, max(1, capacity // self.factor))

    def inject(self, step, heights, topology):
        proposed = list(self.inner.inject(step, heights, topology))
        out: list[int] = []
        for site in proposed:
            out.extend([site] * self.factor)
        return tuple(out[: self._limit])

    def inject_schedule(self, start, steps, topology):
        # amplification is height-independent, so the wrapper is
        # batchable exactly when the inner adversary is
        inner = self.inner.inject_schedule(start, steps, topology)
        if inner is None:
            return None
        out = []
        for entry in inner:
            batch: list[int] = []
            for site in entry:
                batch.extend([site] * self.factor)
            out.append(tuple(batch[: self._limit]))
        return out


class RoundRobinAdversary(Adversary):
    """Cycle injections over a set of nodes (default: all non-sink)."""

    name = "round-robin"

    def __init__(self, nodes: Sequence[int] | None = None):
        self._nodes = tuple(nodes) if nodes is not None else None
        self._cycle: tuple[int, ...] = ()

    def reset(self, topology: Topology, capacity: int) -> None:
        if self._nodes is None:
            self._cycle = tuple(
                v for v in range(topology.n) if v != topology.sink
            )
        else:
            self._cycle = self._nodes
        if not self._cycle:
            raise RateViolation("round-robin has no nodes to inject at")

    def inject(self, step, heights, topology):
        return (self._cycle[step % len(self._cycle)],)

    def inject_schedule(self, start, steps, topology):
        # one tuple per cycle position, shared across the schedule
        period = [(v,) for v in self._cycle]
        m = len(period)
        return [period[(start + i) % m] for i in range(steps)]
