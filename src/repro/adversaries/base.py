"""Adversary abstractions (the rate-c traffic model of §2).

In every step's first mini-step the adversary injects a total of at
most ``c`` packets at nodes of its choice.  An adversary here is a
callback producing the injection sites for a step; it may observe the
full configuration (the adversary is adaptive and omniscient — this is
a *worst-case* model, so giving the adversary more information only
strengthens the results).

Rate enforcement is done by the engine via :func:`validate_injections`;
a misbehaving adversary raises :class:`RateViolation` rather than
silently corrupting an experiment.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..network.topology import Topology
from ..network.validation import validate_injections

__all__ = ["Adversary", "validate_injections", "NullAdversary"]


class Adversary(ABC):
    """Base class for per-step traffic generators.

    Attributes
    ----------
    name:
        Stable identifier used in reports.
    """

    name: str = "abstract"

    def reset(self, topology: Topology, capacity: int) -> None:
        """Called once before a run starts; stateful adversaries re-arm."""

    @abstractmethod
    def inject(
        self, step: int, heights: np.ndarray, topology: Topology
    ) -> Sequence[int]:
        """Node ids receiving one packet each this step (≤ c total).

        Repeats are allowed (several packets at one node) when c > 1.
        ``heights`` is the configuration at the start of the step and
        must not be mutated.
        """

    def inject_schedule(
        self, start: int, steps: int, topology: Topology
    ) -> Sequence[tuple[int, ...]] | None:
        """Optional batched protocol: the next ``steps`` injection
        batches, for steps ``start .. start + steps - 1``.

        Height-independent adversaries (whose choices never depend on
        the configuration) may override this so that
        :meth:`repro.network.engine_fast.PathEngine.run` can precompute
        the whole schedule once and skip per-step Python dispatch on
        its hot loop.  Returning ``None`` — the default, and the only
        correct answer for adaptive adversaries — makes the engine fall
        back to per-step :meth:`inject`.

        An implementation must leave the adversary in exactly the state
        ``steps`` sequential :meth:`inject` calls would, so batched and
        per-step runs can interleave freely on one engine.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class NullAdversary(Adversary):
    """Injects nothing — useful for drain phases and unit tests."""

    name = "null"

    def inject(self, step, heights, topology):
        return ()

    def inject_schedule(self, start, steps, topology):
        return ((),) * steps
