"""State-reactive worst-case heuristics.

The paper's references prove buffer lower bounds for the baseline
policies via crafted traffic:

* Greedy: Θ(n) on the line (Rosén & Scalosub [23]) — realised by the
  *seesaw*: stream packets from the far end, then dump the stream's
  arrivals onto the sink's predecessor while it is still receiving.
* Downhill: Ω(n) ([21]) — a constant far-end stream freezes into a
  staircase, so the far node keeps climbing.
* Downhill-or-Flat: Ω(√n) (Theorem 4.1) — flat plateaus conduct flow,
  so the adversary builds plateaus near the sink and pumps them up.

The adversaries below implement those shapes plus generic hill-climbing
heuristics used by the "worst adversary in the suite" measurements.
All are 1-rate (c = 1).
"""

from __future__ import annotations

import numpy as np

from .base import Adversary
from ..network.topology import Topology

__all__ = [
    "SeesawAdversary",
    "PressureAdversary",
    "PlateauAdversary",
    "MaxHeightChaserAdversary",
    "BackfillAdversary",
]


class SeesawAdversary(Adversary):
    """Anti-greedy: fill from the far end, then hammer the pre-sink.

    Phase 1 (``fill`` steps): inject at the far end; under a greedy
    policy this forms a solid stream flowing towards the sink at rate
    1.  Phase 2: inject at the sink's predecessor, which now receives
    the stream (rate 1), injections (rate 1), and can only drain at
    rate 1 — net +1 per step for as long as the stream lasts, i.e.
    Θ(fill) = Θ(n) buffer growth.
    """

    def __init__(self, fill: int | None = None):
        self.fill = fill
        self.name = f"seesaw(fill={'auto' if fill is None else fill})"
        self._far = -1
        self._pre = -1
        self._fill = 0
        self._start: int | None = None

    def reset(self, topology: Topology, capacity: int) -> None:
        self._far = int(np.argmax(topology.depth))
        kids = topology.children[topology.sink]
        self._pre = kids[0] if kids else self._far
        self._fill = self.fill if self.fill is not None else topology.n - 2
        self._start = None

    def inject(self, step, heights, topology):
        if self._start is None:
            self._start = step
        rel = step - self._start
        return (self._far,) if rel < self._fill else (self._pre,)


class PressureAdversary(Adversary):
    """Anti-Downhill-or-Flat: keep the plateau next to the sink fed.

    Always injects at the last node (walking back from the sink) whose
    height is at least as large as its own predecessor's — i.e. the
    left edge of the maximal non-increasing run ending at the sink.
    Feeding the left edge extends/raises the plateau, and because
    Downhill-or-Flat conducts flow across flat runs, the pumped-up
    plateau keeps refilling the nodes near the sink: heights grow like
    √t (experiment E5).
    """

    name = "pressure"

    def __init__(self) -> None:
        self._order: np.ndarray | None = None

    def reset(self, topology: Topology, capacity: int) -> None:
        self._order = topology.path_order()

    def inject(self, step, heights, topology):
        order = self._order
        hh = heights[order]
        # Walk leftwards from the sink's predecessor while heights are
        # non-increasing towards the sink; the walk stops at the last
        # ascent (hh[i-1] < hh[i]) at or before position n-2.
        n = len(order)
        ascents = np.flatnonzero(hh[: n - 2] < hh[1 : n - 1]) + 1
        pos = int(ascents[-1]) if ascents.size else 0
        return (int(order[pos]),)


class PlateauAdversary(Adversary):
    """Build a height-``target`` plateau of width ``width`` at the sink.

    A scripted variant of :class:`PressureAdversary` used by unit tests
    and the E5 lower-bound exhibit: repeatedly sweeps injection from the
    plateau's left edge towards the sink.
    """

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = int(width)
        self.name = f"plateau(width={width})"
        self._order: np.ndarray | None = None

    def reset(self, topology: Topology, capacity: int) -> None:
        self._order = topology.path_order()

    def inject(self, step, heights, topology):
        order = self._order
        n = len(order)
        width = min(self.width, n - 1)
        # positions [n-1-width, n-2] are the plateau; inject where the
        # plateau is lowest, leftmost first (building from behind keeps
        # the profile non-increasing towards the sink, which flat
        # forwarding preserves).
        window = order[n - 1 - width : n - 1]
        hs = heights[window]
        return (int(window[int(np.argmin(hs))]),)


class MaxHeightChaserAdversary(Adversary):
    """Inject at the current maximum-height node (ties: nearest sink).

    A generic greedy heuristic: always push the peak higher.  Useful as
    a member of the worst-case suite; provably weak against Odd-Even
    (the peak flips parity and drains), which is itself an instructive
    measurement.
    """

    name = "max-chaser"

    def inject(self, step, heights, topology):
        masked = heights.copy()
        masked[topology.sink] = -1
        peak = int(heights[masked.argmax()]) if masked.size else 0
        candidates = np.flatnonzero(masked == max(peak, 0))
        if candidates.size == 0:
            candidates = np.flatnonzero(masked >= 0)
        depths = topology.depth[candidates]
        return (int(candidates[int(np.argmin(depths))]),)


class BackfillAdversary(Adversary):
    """Inject just behind the tallest node, trying to wall it in.

    Raising the predecessor of the peak prevents comparison-based
    policies from refusing flow into the peak forever, and spreads
    congestion backwards — the qualitative behaviour the lower-bound
    proof of Theorem 3.1 exploits in its "inject at the right end"
    scenario.
    """

    name = "backfill"

    def inject(self, step, heights, topology):
        masked = heights.copy()
        masked[topology.sink] = -1
        peak_node = int(masked.argmax())
        kids = topology.children[peak_node]
        if kids:
            hs = [int(heights[k]) for k in kids]
            return (int(kids[int(np.argmax(hs))]),)
        return (peak_node,)
