"""The Theorem 3.1 lower-bound adversary (recursive block halving).

The proof's adversary works in stages.  It maintains a contiguous block
``B_i`` of ``K_i`` nodes whose average message density is at least
``H_i = c·(1 + i/2ℓ)``.  For ``x_i = K_i/2ℓ`` steps it injects ``c``
packets per step at the *rightmost* node of the block (matching the
block's outflow capacity, so the block's content cannot decrease).  If
the right half then carries enough messages, it becomes ``B_{i+1}``;
otherwise the adversary *rewinds* and replays the same window injecting
at the block's *leftmost* node — ℓ-locality guarantees the flow through
the middle link is identical in both scenarios, so the left half plus
the fresh injections now satisfies the density target.  Halving
``log(n₀/2ℓ)`` times forces density ``c(1 + (log n − 2 log ℓ − 1)/2ℓ)``
— i.e. some buffer of size Ω(c·log n/ℓ).

This module implements that attack *literally*, as an orchestrating
driver over any engine exposing ``step(injections)/checkpoint()/
restore()/heights`` — which both the fast path engine and the
packet-tracking simulator do.  Because we physically simulate both
scenarios and keep the better half by *measurement*, the attack remains
sound (it reports what it actually achieved) even for policies or
timings outside the proof's assumptions — e.g. bidirectional policies
(Theorem 3.3, experiment E11), where it serves as the empirical probe.

Corollary 3.2 (burstiness): after the final stage the adversary fires a
δ-burst at the densest block's tallest node, adding δ to the forced
height; enable it with ``burst_delta > 0`` and construct the engine
with ``injection_limit >= c + burst_delta``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.bounds import theorem_3_1_lower_bound
from ..errors import ExperimentError

__all__ = [
    "StageReport",
    "AttackReport",
    "RecursiveLowerBoundAttack",
    "kept_injection_schedule",
]


def kept_injection_schedule(report: "AttackReport", topology) -> dict[int, tuple[int, ...]]:
    """Reconstruct the kept scenario's injection script from a report.

    The attack explores two scenarios per stage and rewinds the loser,
    so the engine's final trajectory corresponds to ONE straight-line
    injection sequence: stage 0 fills the far end, then each halving
    stage injects at the previous block's rightmost or leftmost node
    (whichever scenario the report says was kept).  Replaying the
    returned ``{step: sites}`` script through a fresh engine — e.g. via
    :class:`~repro.adversaries.deterministic.ScheduleAdversary` —
    reproduces the kept trajectory exactly, which is what lets the E4
    burstiness sweep run all of its δ-lanes on one
    :class:`~repro.network.fleet_engine.FleetEngine` after a single
    attack (the terminal δ-burst of Corollary 3.2 is appended per lane
    by the caller; it is not part of the kept script).
    """
    order = (
        topology.path_order() if topology.is_path else topology.spine_order()
    )
    c = report.capacity
    schedule: dict[int, tuple[int, ...]] = {}
    t = 0
    far = int(order[0])
    for _ in range(report.stages[0].steps):
        schedule[t] = (far,) * c
        t += 1
    prev = report.stages[0]
    for stage in report.stages[1:]:
        if stage.scenario == "right":
            site = int(order[prev.block_start + prev.block_size - 1])
        else:
            site = int(order[prev.block_start])
        for _ in range(stage.steps):
            schedule[t] = (site,) * c
            t += 1
        prev = stage
    return schedule


@dataclass(frozen=True)
class StageReport:
    """What one halving stage achieved."""

    stage: int
    block_start: int
    block_size: int
    steps: int
    scenario: str  # "initial", "right" or "left"
    messages: int
    density: float
    target_density: float


@dataclass(frozen=True)
class AttackReport:
    """Outcome of the full attack."""

    n: int
    capacity: int
    ell: int
    n0: int
    forced_height: int
    final_density: float
    predicted: float
    burst_delta: int
    stages: tuple[StageReport, ...] = field(default_factory=tuple)

    @property
    def achieved_ratio(self) -> float:
        """forced height / theoretical prediction (≥ 1 means the attack
        met or beat the proof's guarantee)."""
        return self.forced_height / self.predicted if self.predicted else float("inf")


class RecursiveLowerBoundAttack:
    """Drive an engine through the Theorem 3.1 attack.

    Parameters
    ----------
    ell:
        Locality parameter of the policy under attack (the adversary is
        weaker — needs more steps per stage — for larger ℓ).
    burst_delta:
        δ of Corollary 3.2; 0 disables the terminal burst.
    """

    def __init__(self, ell: int = 1, burst_delta: int = 0) -> None:
        if ell < 1:
            raise ExperimentError("ell must be >= 1")
        if burst_delta < 0:
            raise ExperimentError("burst_delta must be >= 0")
        self.ell = int(ell)
        self.burst_delta = int(burst_delta)

    # ------------------------------------------------------------------
    def run(self, engine) -> AttackReport:
        """Execute the attack; the engine must start from the empty
        configuration and have no adversary of its own."""
        topo = engine.topology
        # positions: 0 = far end ... -1 = sink; on trees the attack
        # runs along the deepest root-leaf path (the spine)
        order = topo.path_order() if topo.is_path else topo.spine_order()
        c = engine.capacity
        ell = self.ell
        num_buffering = len(order) - 1  # the sink never buffers

        if self.burst_delta and engine.injection_limit < c + self.burst_delta:
            raise ExperimentError(
                "engine.injection_limit must be >= c + burst_delta for the "
                "Corollary 3.2 burst"
            )

        # n0: the largest ell * 2^i that fits among the buffering nodes
        if num_buffering < 2 * ell:
            raise ExperimentError(
                f"path too short for ell={ell}: need at least {2 * ell + 1} nodes"
            )
        i = 0
        while ell * (2 ** (i + 1)) <= num_buffering:
            i += 1
        n0 = ell * (2**i)

        stages: list[StageReport] = []

        def block_messages(start: int, size: int) -> int:
            return int(engine.heights[order[start : start + size]].sum())

        # ---- stage 0: fill the leftmost n0 nodes at rate c ------------
        far = int(order[0])
        for _ in range(n0):
            engine.step((far,) * c)
        start, size = 0, n0
        msgs = block_messages(start, size)
        stages.append(
            StageReport(
                stage=0,
                block_start=start,
                block_size=size,
                steps=n0,
                scenario="initial",
                messages=msgs,
                density=msgs / size,
                target_density=float(c),
            )
        )

        # ---- halving stages ------------------------------------------
        stage = 0
        while size >= 2 * ell:
            stage += 1
            steps = size // (2 * ell)
            half = size // 2
            target = c * (1.0 + stage / (2.0 * ell))

            cp = engine.checkpoint()
            right_site = int(order[start + size - 1])
            for _ in range(steps):
                engine.step((right_site,) * c)
            m_right = block_messages(start + half, half)
            cp_right = engine.checkpoint()

            engine.restore(cp)
            left_site = int(order[start])
            for _ in range(steps):
                engine.step((left_site,) * c)
            m_left = block_messages(start, half)

            if m_right >= m_left:
                engine.restore(cp_right)
                start, size = start + half, half
                msgs, scenario = m_right, "right"
            else:
                start, size = start, half
                msgs, scenario = m_left, "left"

            stages.append(
                StageReport(
                    stage=stage,
                    block_start=start,
                    block_size=size,
                    steps=steps,
                    scenario=scenario,
                    messages=msgs,
                    density=msgs / size,
                    target_density=target,
                )
            )

        # ---- Corollary 3.2 terminal burst ----------------------------
        if self.burst_delta:
            h = engine.heights
            in_block = order[start : start + size]
            tallest = int(in_block[int(np.argmax(h[in_block]))])
            engine.step((tallest,) * (c + self.burst_delta))

        final = stages[-1]
        return AttackReport(
            n=topo.n,
            capacity=c,
            ell=ell,
            n0=n0,
            forced_height=int(engine.metrics.max_height),
            final_density=final.density,
            # on trees the prediction applies to the injection corridor
            # (the spine), which for a path is the whole network
            predicted=theorem_3_1_lower_bound(len(order), c, ell)
            + self.burst_delta,
            burst_delta=self.burst_delta,
            stages=tuple(stages),
        )
