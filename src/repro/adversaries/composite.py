"""Composite adversaries: mixtures and alternations.

Real traffic is rarely one archetype.  :class:`MixtureAdversary` draws
a sub-adversary per step from a weighted distribution (seeded);
:class:`AlternatingAdversary` cycles deterministically.  Both are
rate-safe: they delegate a single step to a single sub-adversary, so
the per-step constraint is whatever the chosen member respects.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Adversary
from ..network.topology import Topology

__all__ = ["MixtureAdversary", "AlternatingAdversary"]


class MixtureAdversary(Adversary):
    """Each step, pick one member at random (by weight) and delegate."""

    def __init__(
        self,
        members: Sequence[Adversary],
        weights: Sequence[float] | None = None,
        seed: int | None = None,
    ):
        if not members:
            raise ValueError("need at least one member")
        if weights is not None:
            if len(weights) != len(members):
                raise ValueError("weights must match members")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError("weights must be non-negative, sum > 0")
        self.members = list(members)
        self._weights = (
            None
            if weights is None
            else np.asarray(weights, dtype=float) / sum(weights)
        )
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = "mix(" + ",".join(m.name for m in members) + ")"

    def reset(self, topology: Topology, capacity: int) -> None:
        self._rng = np.random.default_rng(self.seed)
        for m in self.members:
            m.reset(topology, capacity)

    def inject(self, step, heights, topology):
        idx = int(self._rng.choice(len(self.members), p=self._weights))
        return self.members[idx].inject(step, heights, topology)


class AlternatingAdversary(Adversary):
    """Round-robin over members with a fixed dwell time per member."""

    def __init__(self, members: Sequence[Adversary], dwell: int = 1):
        if not members:
            raise ValueError("need at least one member")
        if dwell < 1:
            raise ValueError("dwell must be >= 1")
        self.members = list(members)
        self.dwell = int(dwell)
        self.name = (
            f"alt({','.join(m.name for m in members)};dwell={dwell})"
        )
        self._start: int | None = None

    def reset(self, topology: Topology, capacity: int) -> None:
        self._start = None
        for m in self.members:
            m.reset(topology, capacity)

    def inject(self, step, heights, topology):
        if self._start is None:
            self._start = step
        rel = step - self._start
        idx = (rel // self.dwell) % len(self.members)
        return self.members[idx].inject(step, heights, topology)
