"""Convergecast workloads specific to trees (§5 experiments).

The key crafted workload is the §5 opening argument: on a spider with
k arms, fill every arm with a packet wave timed to reach the hub
simultaneously; a 1-local policy (no sibling arbitration) then pushes
k packets into the hub in one step, forcing a buffer of size k = Θ(√n)
when k = √n.  The 2-local Algorithm 5 admits only the priority line and
stays logarithmic (experiment E8).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Adversary
from ..network.topology import Topology

__all__ = [
    "LeafSweepAdversary",
    "HeavyBranchAdversary",
    "SpiderWaveAdversary",
    "TreeSeesawAdversary",
]


class TreeSeesawAdversary(Adversary):
    """The seesaw lifted to trees: stream along the deepest root-leaf
    path, then hammer the sink's child on that path while the stream
    keeps arriving.  The tree analogue of the [23] anti-greedy
    workload; against Algorithm 5 it exercises the drain line."""

    name = "tree-seesaw"

    def __init__(self, fill: int | None = None):
        self.fill = fill
        self._far = -1
        self._pre = -1
        self._fill = 0
        self._start: int | None = None

    def reset(self, topology: Topology, capacity: int) -> None:
        spine = topology.spine_order()
        self._far = int(spine[0])
        self._pre = int(spine[-2]) if len(spine) >= 2 else int(spine[0])
        self._fill = self.fill if self.fill is not None else len(spine) - 1
        self._start = None

    def inject(self, step, heights, topology):
        if self._start is None:
            self._start = step
        rel = step - self._start
        return (self._far,) if rel < self._fill else (self._pre,)


class LeafSweepAdversary(Adversary):
    """Cycle injections over the leaves (periphery load)."""

    name = "leaf-sweep"

    def __init__(self) -> None:
        self._leaves: tuple[int, ...] = ()

    def reset(self, topology: Topology, capacity: int) -> None:
        leaves = [v for v in topology.leaves if v != topology.sink]
        self._leaves = tuple(leaves) if leaves else (0,)

    def inject(self, step, heights, topology):
        return (self._leaves[step % len(self._leaves)],)


class HeavyBranchAdversary(Adversary):
    """Always inject into the subtree currently holding the most packets.

    Within the heaviest subtree below the sink, the target is the
    tallest node (ties towards the sink) — a hill-climbing heuristic
    that stresses the sibling arbitration of Algorithm 5.
    """

    name = "heavy-branch"

    def __init__(self) -> None:
        self._branch_of: np.ndarray | None = None

    def reset(self, topology: Topology, capacity: int) -> None:
        # label every node with the sink-child subtree containing it
        branch = np.full(topology.n, -1, dtype=np.int64)
        for b in topology.children[topology.sink]:
            stack = [b]
            while stack:
                u = stack.pop()
                branch[u] = b
                stack.extend(topology.children[u])
        self._branch_of = branch

    def inject(self, step, heights, topology):
        branch = self._branch_of
        roots = topology.children[topology.sink]
        if not roots:
            return ()
        weights = {b: 0 for b in roots}
        for v in range(topology.n):
            b = int(branch[v])
            if b >= 0:
                weights[b] += int(heights[v])
        heavy = max(roots, key=lambda b: (weights[b], -topology.depth[b]))
        members = np.flatnonzero(branch == heavy)
        hs = heights[members]
        best = members[hs == hs.max()]
        depths = topology.depth[best]
        return (int(best[int(np.argmin(depths))]),)


class SpiderWaveAdversary(Adversary):
    """The §5 lower-bound workload for 1-local policies on spiders.

    Fills the arms one by one, placing a packet at the position in each
    arm whose distance to the hub equals the arm's index — so that under
    any work-conserving-ish 1-local rule the packets arrive at the hub
    in the same step.  After the set-up phase it idles (rate constraint:
    one packet per step), letting the synchronized wave collide.

    ``arm_heads`` must list, per arm, the node adjacent to the hub; for
    topologies built by :func:`repro.network.topology.spider` use
    :meth:`from_spider`.
    """

    name = "spider-wave"

    def __init__(self, hub: int, arm_heads: Sequence[int]):
        self.hub = int(hub)
        self.arm_heads = tuple(int(a) for a in arm_heads)
        self._plan: list[int] = []
        self._start: int | None = None

    @classmethod
    def from_spider(cls, topology: Topology) -> "SpiderWaveAdversary":
        """Derive hub and arm heads from a :func:`spider` topology."""
        hub = topology.children[topology.sink][0]
        return cls(hub, topology.children[hub])

    def reset(self, topology: Topology, capacity: int) -> None:
        self._start = None
        plan: list[int] = []
        # arm i receives its packet at distance (i+1) from the hub, and
        # the arms are filled starting from the farthest placement so
        # that travel times + remaining set-up time align at the hub.
        arms = list(self.arm_heads)
        k = len(arms)
        for i in reversed(range(k)):
            # walk outwards from the arm head i hops (clamped to arm end)
            node = arms[i]
            for _ in range(i):
                kids = topology.children[node]
                if not kids:
                    break
                node = kids[0]
            plan.append(node)
        self._plan = plan

    def inject(self, step, heights, topology):
        if self._start is None:
            self._start = step
        rel = step - self._start
        if rel < len(self._plan):
            return (self._plan[rel],)
        return ()
