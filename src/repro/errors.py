"""Exception hierarchy for the :mod:`repro` library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-classes are grouped by
subsystem: topology construction, simulation-time invariants, policy
configuration and the proof-certification machinery.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "SimulationError",
    "CapacityViolation",
    "ConservationViolation",
    "RateViolation",
    "BufferOverflow",
    "FaultError",
    "CheckpointError",
    "PolicyError",
    "LocalityViolation",
    "CertificationError",
    "MatchingError",
    "AttachmentError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Raised when a topology is malformed (cycles, multiple roots, ...)."""


class SimulationError(ReproError):
    """Raised when the simulation engine detects an inconsistent state."""


class CapacityViolation(SimulationError):
    """A link carried more than ``c`` packets in a single step."""


class ConservationViolation(SimulationError):
    """Packets were created or destroyed outside injection/consumption."""


class RateViolation(SimulationError):
    """An adversary attempted to inject more than ``c`` packets in a step."""


class BufferOverflow(SimulationError):
    """A finite buffer received a packet it could not hold.

    Only raised when overflow handling cannot resolve the situation
    locally: a ``push-back`` buffer was pushed into without the engine
    checking :attr:`~repro.network.buffers.Buffer.free` first.  The
    drop disciplines (``drop-tail``, ``drop-oldest``) never raise —
    they record the loss in the conservation ledger instead.
    """


class FaultError(SimulationError):
    """An injected fault terminated the run (a simulated process kill).

    Raised by :class:`repro.network.faults.FaultInjector` when a
    ``halt`` fault fires.  Callers that want crash-resilient runs catch
    it and resume from the last snapshot (see
    :func:`repro.network.faults.run_with_recovery`).
    """


class CheckpointError(ReproError):
    """A durable checkpoint file cannot be trusted or restored.

    Raised by :mod:`repro.io.checkpoint` when a checkpoint file is
    missing, truncated, fails its payload checksum, announces an
    unknown format or schema version, or was written by a different
    engine class than the one restoring it.  The message always names
    the offending file and the specific diagnosis — a corrupt
    checkpoint must never be silently unpickled or silently ignored.
    """


class PolicyError(ReproError):
    """Raised when a forwarding policy is misconfigured or misused."""


class LocalityViolation(PolicyError):
    """A policy attempted to read state outside its declared locality."""


class CertificationError(ReproError):
    """The proof-machinery certifier found a violated invariant.

    If this is ever raised during an Odd-Even run with pre-injection
    decision timing, either the implementation or the paper's proof has
    a gap; the message carries enough context to reconstruct the round.
    """


class MatchingError(CertificationError):
    """A balanced matching (Definition 4.2 / Lemma 5.1) is ill-formed."""


class AttachmentError(CertificationError):
    """An attachment scheme rule (Definitions 4.5/4.8/5.4) is violated."""


class ExperimentError(ReproError):
    """Raised when an experiment is invoked with invalid parameters."""
