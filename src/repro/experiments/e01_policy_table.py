"""E1 — the policy comparison table (§1.2 and references [21], [23]).

Regenerates the implicit table behind the paper's motivation: the
worst-case buffer requirement of every discussed policy on a directed
path, measured over the adversary suite plus the Theorem 3.1 attack,
with its growth law classified over an n-sweep.

Expected shape (the paper's claims):

====================  ==========================
Odd-Even              Θ(log n)   (Theorem 4.13)
Downhill-or-Flat      Θ(√n)      (Theorem 4.1)
Downhill              Ω(n)       ([21])
Greedy                Θ(n)       ([23])
FIE                   unbounded  ([21])
Centralized trains    O(1) given σ ([21])
====================  ==========================
"""

from __future__ import annotations

from ..adversaries import RecursiveLowerBoundAttack, TokenBucketAdversary, FarEndAdversary
from ..analysis import classify_growth, worst_case_over_suite
from ..core.bounds import odd_even_upper_bound
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..policies import (
    CentralizedTrainPolicy,
    DownhillOrFlatPolicy,
    DownhillPolicy,
    ForwardIfEmptyPolicy,
    GreedyPolicy,
    OddEvenPolicy,
)
from .base import Experiment, standard_suite

__all__ = ["PolicyTableExperiment"]


class PolicyTableExperiment(Experiment):
    id = "E1"
    title = "Worst-case buffer size by policy (directed path)"
    paper_ref = "§1.2; Miller & Patt-Shamir [21]; Rosén & Scalosub [23]"
    claim = (
        "Odd-Even is logarithmic; Downhill-or-Flat ~ sqrt(n); Downhill and "
        "Greedy linear-family; local FIE unbounded; the centralized train "
        "algorithm constant."
    )

    POLICIES = (
        ("odd-even", OddEvenPolicy, "Theta(log n)"),
        ("downhill-or-flat", DownhillOrFlatPolicy, "Theta(sqrt n)"),
        ("downhill", DownhillPolicy, "Omega(n)"),
        ("greedy", GreedyPolicy, "Theta(n)"),
        ("fie", ForwardIfEmptyPolicy, "unbounded"),
        ("centralized-train", CentralizedTrainPolicy, "sigma + 2"),
    )

    def _worst(self, name: str, factory, n: int, steps: int) -> int:
        """Worst max-height for one policy over suite + attack."""
        worst = worst_case_over_suite(
            n, factory, standard_suite(), steps
        ).max_height
        engine = PathEngine(n, factory(), None)
        attack = RecursiveLowerBoundAttack(ell=1).run(engine)
        worst = max(worst, attack.forced_height)
        if name == "centralized-train":
            # also run the honest workload for the constant-buffer
            # claim — the (rho=1, sigma) bucket with opening burst
            eng = PathEngine(
                n,
                factory(),
                TokenBucketAdversary(
                    FarEndAdversary(), rho=1, sigma=3, greedy=True
                ),
                injection_limit=4,
            )
            eng.run(steps)
            worst = max(worst, eng.max_height)
        return worst

    def _run(self, preset: str) -> ExperimentResult:
        if preset == "quick":
            ns = [32, 64, 128]
        else:
            ns = [64, 128, 256, 512, 1024]
        steps_of = {n: 16 * n for n in ns}

        rows = []
        growth: dict[str, str] = {}
        measured: dict[str, dict[int, int]] = {}
        for name, factory, expected in self.POLICIES:
            per_n = {}
            for n in ns:
                per_n[n] = self._worst(name, factory, n, steps_of[n])
            measured[name] = per_n
            cls, power, logfit = classify_growth(ns, [per_n[n] for n in ns])
            growth[name] = cls.value
            rows.append(
                [
                    name,
                    expected,
                    *[per_n[n] for n in ns],
                    cls.value,
                    round(power.exponent, 2),
                ]
            )

        # Downhill's Omega(n) staircase needs Theta(n^2) steps to build
        # (the 16n budget above only reaches ~2*sqrt(n)); exhibit it
        # with a dedicated long-horizon run at a small size.
        from ..adversaries import FarEndAdversary as _FarEnd

        n_stair = ns[0]
        stair = PathEngine(n_stair, DownhillPolicy(), _FarEnd())
        stair.run(8 * n_stair * n_stair)
        rows.append(
            [
                "downhill (8*n^2 steps)",
                "Omega(n)",
                stair.max_height,
                *([""] * (len(ns) - 1)),
                "linear",
                1.0,
            ]
        )

        n_big = ns[-1]
        checks = {
            "downhill reaches Omega(n) given n^2 time": stair.max_height
            >= n_stair - 1,
            "odd-even bounded by log n + 3": measured["odd-even"][n_big]
            <= odd_even_upper_bound(n_big),
            "ordering odd-even < DoF < greedy": (
                measured["odd-even"][n_big]
                < measured["downhill-or-flat"][n_big]
                < measured["greedy"][n_big]
            ),
            "greedy reaches Omega(n)": measured["greedy"][n_big] >= n_big / 4,
            "FIE exceeds every bounded policy": measured["fie"][n_big]
            > measured["greedy"][n_big],
            "odd-even growth is sub-sqrt": growth["odd-even"]
            in ("logarithmic", "constant"),
        }
        passed = all(checks.values())
        notes = [f"{'OK ' if ok else 'BAD'} {desc}" for desc, ok in checks.items()]

        return self._result(
            preset=preset,
            headers=["policy", "paper bound", *[f"n={n}" for n in ns],
                     "growth", "exponent"],
            rows=rows,
            passed=passed,
            notes=notes,
            params={"ns": ns, "steps": steps_of},
        )
