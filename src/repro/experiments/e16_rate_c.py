"""E16 — the §6 open question: local O(c·log n) algorithms for rate c.

The paper leaves open whether local algorithms with O(log n)-style
buffers exist for injection rates c > 1.  This experiment runs the
candidate *Scaled Odd-Even* (Odd-Even on ⌈h/c⌉-quantised heights, see
:mod:`repro.policies.rate_c`) against the Theorem 3.1 attack and a
rate-amplified adversary suite, across n and c:

* at every rate the growth over n must classify as logarithmic, and
* measured heights must stay below the conjectured c·(log₂ n + 3),
* while rate-c greedy stays linear (the control).

This is exploratory evidence on an open problem, not a theorem; the
numbers are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from ..adversaries import (
    AmplifiedAdversary,
    RecursiveLowerBoundAttack,
)
from ..analysis import classify_growth
from ..core.bounds import odd_even_upper_bound
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..network.fleet_engine import FleetEngine
from ..policies import GreedyPolicy
from ..policies.rate_c import ScaledOddEvenPolicy
from .base import Experiment, standard_suite

__all__ = ["RateCExperiment"]


class RateCExperiment(Experiment):
    id = "E16"
    title = "Scaled Odd-Even at rates c > 1 (open question of §6)"
    paper_ref = "§6 Conclusions (open problem); Theorem 3.1"
    claim = (
        "Conjecture made executable: quantising Odd-Even to c-packet "
        "blocks keeps worst-case buffers at O(c log n) for rate-c "
        "adversaries."
    )

    def _run(self, preset: str) -> ExperimentResult:
        if preset == "quick":
            ns = [64, 256, 1024]
            cs = [1, 2, 4]
        else:
            ns = [64, 256, 1024, 4096]
            cs = [1, 2, 4, 8]

        rows = []
        ok = True
        for c in cs:
            measured = []
            for n in ns:
                engine = PathEngine(
                    n, ScaledOddEvenPolicy(c), None, capacity=c
                )
                attack = RecursiveLowerBoundAttack(ell=1).run(engine)
                m = attack.forced_height
                # rate-c amplified suite (a subset keeps runtime
                # sane), all lanes in lockstep on one fleet —
                # adaptive members fall back inside the engine
                fleet = FleetEngine(
                    n,
                    ScaledOddEvenPolicy(c),
                    [AmplifiedAdversary(adv, c) for adv in standard_suite()[:5]],
                    capacity=c,
                )
                fleet.run(8 * n)
                m = max(m, int(fleet.max_heights.max()))
                measured.append(m)
                conj = c * odd_even_upper_bound(n)
                within = m <= conj
                ok &= within
                rows.append(
                    [c, n, m, round(attack.predicted, 1), round(conj, 1),
                     "yes" if within else "NO"]
                )
            cls, power, _ = classify_growth(ns, measured)
            log_like = cls.value in ("logarithmic", "constant")
            ok &= log_like
            rows.append(
                [c, "growth", cls.value, round(power.exponent, 2), "", ""]
            )

        # the control: rate-c greedy remains linear
        n = ns[-1]
        c = cs[1]
        engine = PathEngine(n, GreedyPolicy(), None, capacity=c)
        attack = RecursiveLowerBoundAttack(ell=1).run(engine)
        greedy_linear = attack.forced_height >= n / 4
        ok &= greedy_linear
        rows.append(
            [c, n, attack.forced_height, round(attack.predicted, 1),
             "greedy control", "linear" if greedy_linear else "NO"]
        )

        return self._result(
            preset=preset,
            headers=["c", "n", "max height", "attack predicted",
                     "conjecture c(log2 n+3)", "within"],
            rows=rows,
            passed=ok,
            notes=[
                "evidence for the open conjecture, not a proof: scaled "
                "Odd-Even stays logarithmic at every tested rate",
            ],
            params={"ns": ns, "cs": cs},
        )
