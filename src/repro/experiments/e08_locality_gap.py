"""E8 — §5 opening: 1-locality is not enough on trees.

On a spider with k arms, the synchronized leaf wave delivers one packet
per arm to the hub in the *same* step under any 1-local rule (no
sibling arbitration), forcing a hub buffer of size ≈ k = Θ(√n).  The
2-local Algorithm 5 admits one packet per step into the hub and stays
at O(log n).  This experiment measures both sides of that gap.
"""

from __future__ import annotations

import math

from ..adversaries import SpiderWaveAdversary
from ..analysis import classify_growth
from ..core.bounds import tree_upper_bound
from ..io.results import ExperimentResult
from ..network.tree_engine import TreeEngine
from ..network.topology import spider
from ..policies import OddEvenPolicy, TreeOddEvenPolicy
from .base import Experiment

__all__ = ["LocalityGapExperiment"]


class LocalityGapExperiment(Experiment):
    id = "E8"
    title = "1-local vs 2-local on spiders (hub buffer)"
    paper_ref = "§5, first observation"
    claim = (
        "With lookahead 1 a sqrt(n)-ary intersection can receive sqrt(n) "
        "packets at once; lookahead 2 (Algorithm 5) avoids this."
    )

    def _run(self, preset: str) -> ExperimentResult:
        arm_counts = [4, 8, 16] if preset == "quick" else [4, 8, 16, 32, 64]

        rows = []
        one_local = []
        two_local = []
        ok = True
        for k in arm_counts:
            topo = spider(k, k)  # n ~ k^2, so k ~ sqrt(n)
            hub = topo.children[topo.sink][0]
            steps = 3 * k + 4

            results = {}
            for label, policy in (
                ("1-local", OddEvenPolicy()),
                ("2-local", TreeOddEvenPolicy()),
            ):
                sim = TreeEngine(
                    topo, policy, SpiderWaveAdversary.from_spider(topo)
                )
                sim.run(steps)
                results[label] = int(
                    sim.metrics.tracker.per_node_max[hub]
                )
            one_local.append(results["1-local"])
            two_local.append(results["2-local"])
            gap_ok = (
                results["1-local"] >= k - 1
                and results["2-local"] <= tree_upper_bound(topo.n)
                and results["2-local"] < results["1-local"]
            )
            ok &= gap_ok
            rows.append(
                [k, topo.n, results["1-local"], results["2-local"],
                 round(math.sqrt(topo.n), 1), "yes" if gap_ok else "NO"]
            )

        ns = [spider(k, k).n for k in arm_counts]
        cls1, p1, _ = classify_growth(ns, one_local)
        sqrt_like = 0.3 <= p1.exponent <= 0.7
        return self._result(
            preset=preset,
            headers=["arms k", "n", "hub max (1-local)", "hub max (2-local)",
                     "sqrt(n)", "gap"],
            rows=rows,
            passed=ok and sqrt_like,
            notes=[
                f"1-local hub growth exponent vs n: {p1.exponent:.3f} "
                f"(sqrt family; class {cls1.value})",
                "2-local (Algorithm 5) admits one packet per step into the "
                "hub via sibling priority",
            ],
            params={"arm_counts": arm_counts},
        )
