"""E3 — Theorem 3.1: the Ω(c·log n/ℓ) lower bound, constructively.

Runs the recursive block-halving adversary (with literal engine
rollback between its two scenarios) against Odd-Even, Downhill-or-Flat
and Greedy, across n, ℓ and c.  The attack must force at least the
proof's closed-form value ``c(1 + (log n − 2 log ℓ − 1)/2ℓ)`` against
*every* policy — that is what makes it a lower bound for the problem,
not for one algorithm.
"""

from __future__ import annotations

from ..adversaries import RecursiveLowerBoundAttack
from ..core.bounds import theorem_3_1_lower_bound
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..policies import DownhillOrFlatPolicy, GreedyPolicy, OddEvenPolicy
from ..viz.ascii import series_plot
from .base import Experiment

__all__ = ["LowerBoundExperiment"]


class LowerBoundExperiment(Experiment):
    id = "E3"
    title = "Theorem 3.1 adversary: forced height vs n, ell, c"
    paper_ref = "Theorem 3.1"
    claim = (
        "Any ell-local algorithm on a directed path with capacity c can be "
        "forced to buffer c(1 + (log n - 2 log ell - 1)/(2 ell)) packets."
    )

    def _run(self, preset: str) -> ExperimentResult:
        if preset == "quick":
            ns = [64, 256, 1024]
            ells = [1, 2]
            cs = [1, 2]
        else:
            ns = [64, 256, 1024, 4096, 16384]
            ells = [1, 2, 4]
            cs = [1, 2, 4]

        rows = []
        ok = True
        odd_even_series: list[tuple[int, int]] = []
        for n in ns:
            for ell in ells:
                for policy_cls in (OddEvenPolicy, DownhillOrFlatPolicy):
                    engine = PathEngine(n, policy_cls(), None)
                    rep = RecursiveLowerBoundAttack(ell=ell).run(engine)
                    meets = rep.forced_height >= rep.predicted
                    ok &= meets
                    rows.append(
                        [
                            n,
                            ell,
                            1,
                            policy_cls().name,
                            rep.forced_height,
                            round(rep.predicted, 2),
                            "yes" if meets else "NO",
                        ]
                    )
                    if policy_cls is OddEvenPolicy and ell == 1:
                        odd_even_series.append((n, rep.forced_height))
        # capacity sweep against greedy (defined for any c)
        for c in cs:
            n = ns[-1]
            engine = PathEngine(n, GreedyPolicy(), None, capacity=c)
            rep = RecursiveLowerBoundAttack(ell=1).run(engine)
            meets = rep.forced_height >= rep.predicted
            ok &= meets
            rows.append(
                [n, 1, c, "greedy", rep.forced_height,
                 round(rep.predicted, 2), "yes" if meets else "NO"]
            )

        xs = [x for x, _ in odd_even_series]
        ys = [y for _, y in odd_even_series]
        chart = series_plot(
            {
                "forced (odd-even, ell=1)": (xs, ys),
                "predicted": (
                    xs,
                    [theorem_3_1_lower_bound(n, 1, 1) for n in xs],
                ),
            },
            log2_x=True,
            x_label="n",
            y_label="height",
            title="E3: forced height grows with log n",
        )
        return self._result(
            preset=preset,
            headers=["n", "ell", "c", "policy", "forced", "predicted", "meets"],
            rows=rows,
            passed=ok,
            notes=[
                "the attack simulates both scenarios per stage and keeps the "
                "denser half, so 'forced' can exceed 'predicted'",
            ],
            artifacts={"scaling chart": chart},
            params={"ns": ns, "ells": ells, "cs": cs},
        )
