"""E19 — graceful degradation: finite buffers + faults vs the bounds.

The paper's model has unbounded buffers and zero loss; Theorems 4.13
and 5.11 say Odd-Even (paths) and Tree need only ``log₂ n + 3`` resp.
``tree_upper_bound(n)`` slots against any rate-1 adversary.  This
experiment treats those bounds as *provisioning advice* and stress-tests
it: give every node a finite buffer, sweep the capacity from well below
to above the bound, drive the network with the Theorem 3.1 recursive
attack (paths) and the tree seesaw (trees), and overlay fault plans —

* ``none``        — the faithful model, minus unbounded buffers;
* ``recoverable`` — link outages and injection jitter: packets are
  delayed, never destroyed by the fault itself;
* ``lossy``       — node crashes with buffer wipes on top.

Claimed shape: provisioning **at or above the bound loses nothing**,
even under recoverable faults; below the bound the loss ledger fills
in, monotonically worse as capacity shrinks; and every run — lossy or
not — balances the extended conservation law
``injected == delivered + in_flight + dropped`` exactly.  A final
crash/resume check kills a run mid-flight (a scheduled ``halt`` fault)
and verifies :func:`~repro.network.faults.run_with_recovery` finishes
with the same :class:`~repro.network.simulator.RunResult` as the
uninterrupted run.
"""

from __future__ import annotations

import math

from ..adversaries import RecursiveLowerBoundAttack, TreeSeesawAdversary
from ..core.bounds import odd_even_upper_bound, tree_upper_bound
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..network.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    RandomFaults,
    run_with_recovery,
)
from ..network.simulator import RunResult, Simulator
from ..network.topology import balanced_tree
from ..network.tree_engine import TreeEngine
from ..policies import OddEvenPolicy, TreeOddEvenPolicy
from .base import Experiment

__all__ = ["FaultDegradationExperiment"]


def _path_plans(n: int, steps: int) -> dict[str, FaultPlan | None]:
    """The three fault overlays for the path sweep.

    The recoverable plan uses short link outages (the node keeps
    buffering, it just cannot forward) plus injection jitter — faults
    that delay packets but never destroy them.  The lossy plan adds
    crashes with buffer wipes and a stochastic background of outages.
    """
    a, b = n // 3, (2 * n) // 3
    recoverable = FaultPlan(
        events=(
            FaultEvent(kind=FaultKind.LINK_DOWN, start=steps // 4,
                       node=a, duration=2),
            FaultEvent(kind=FaultKind.LINK_DOWN, start=steps // 2,
                       node=b, duration=2),
            FaultEvent(kind=FaultKind.JITTER, start=(3 * steps) // 4,
                       duration=3, delay=2),
        )
    )
    lossy = FaultPlan(
        events=recoverable.events + (
            FaultEvent(kind=FaultKind.CRASH, start=steps // 3, node=a,
                       duration=3, wipe=True),
            FaultEvent(kind=FaultKind.CRASH, start=(2 * steps) // 3,
                       node=b, duration=3, wipe=False),
        ),
        random=RandomFaults(p_link_down=0.01, p_crash=0.002, duration=2),
        seed=19,
    )
    return {"none": None, "recoverable": recoverable, "lossy": lossy}


class FaultDegradationExperiment(Experiment):
    id = "E19"
    title = "Fault injection + finite buffers: loss vs provisioned capacity"
    paper_ref = "Theorems 3.1, 4.13, 5.11 (as provisioning advice)"
    claim = (
        "Buffers provisioned at the paper's bounds (log2 n + 3 on paths, "
        "tree_upper_bound(n) on trees) lose no packets under the "
        "recursive lower-bound attack, even with recoverable faults; "
        "below the bound losses appear and grow as capacity shrinks, "
        "with every packet accounted for by the conservation ledger."
    )

    # ------------------------------------------------------------------
    def _path_sweep(self, n: int, rows: list, notes: list) -> bool:
        bound = math.ceil(odd_even_upper_bound(n))
        caps: list[int | None] = sorted(
            {max(1, bound - 6), max(1, bound - 4), bound - 2, bound - 1,
             bound, bound + 2}
        )
        caps.append(None)
        steps_hint = 4 * n  # the attack runs ~n steps; plans scale off this
        plans = self._overlay(n, steps_hint)
        ok = True
        for plan_name, plan in plans.items():
            prev_loss: int | None = None
            smallest_cap_loss: int | None = None
            for cap in caps:
                engine = PathEngine(
                    n,
                    OddEvenPolicy(),
                    None,
                    buffer_capacity=cap,
                    overflow="drop-tail",
                    faults=plan,
                )
                report = RecursiveLowerBoundAttack(ell=1).run(engine)
                m = engine.metrics
                ledger = m.ledger
                balanced = ledger.balanced(
                    m.injected, m.delivered, int(engine.heights.sum())
                )
                ok &= balanced
                at_or_above = cap is None or cap >= bound
                if at_or_above and plan_name in ("none", "recoverable"):
                    ok &= ledger.total == 0
                if prev_loss is not None:
                    # capacity grew, loss must not
                    ok &= ledger.total <= prev_loss
                prev_loss = ledger.total
                if smallest_cap_loss is None:
                    smallest_cap_loss = ledger.total
                rows.append(
                    [
                        f"path({n})",
                        plan_name,
                        "inf" if cap is None else cap,
                        bound,
                        report.forced_height,
                        m.injected,
                        m.delivered,
                        ledger.total,
                        self._causes(ledger),
                        "yes" if balanced else "NO",
                    ]
                )
            if plan_name == "none" and smallest_cap_loss == 0:
                notes.append(
                    f"path({n}): even cap={caps[0]} absorbs the attack "
                    "without loss - the forced height stays below it"
                )
        return ok

    def _tree_sweep(self, depth: int, steps: int, rows: list) -> bool:
        topo = balanced_tree(2, depth)
        n = topo.n
        bound = tree_upper_bound(n)
        caps: list[int | None] = sorted({max(1, bound - 6), bound - 2, bound})
        caps.append(None)
        plans = self._overlay(n, steps)
        ok = True
        for plan_name, plan in plans.items():
            prev_loss: int | None = None
            for cap in caps:
                sim = TreeEngine(
                    topo,
                    TreeOddEvenPolicy(),
                    TreeSeesawAdversary(),
                    buffer_capacity=cap,
                    overflow="drop-tail",
                    faults=plan,
                )
                # the recovery harness makes user plans containing halt
                # events survivable here (a plain run would just die)
                run_with_recovery(sim, steps, snapshot_every=max(1, steps // 8))
                result = sim.result()
                ledger = sim.metrics.ledger
                balanced = ledger.balanced(
                    result.injected, result.delivered, result.in_flight
                )
                ok &= balanced
                if (cap is None or cap >= bound) and plan_name in (
                    "none", "recoverable"
                ):
                    ok &= result.dropped == 0
                if prev_loss is not None:
                    ok &= result.dropped <= prev_loss
                prev_loss = result.dropped
                rows.append(
                    [
                        f"binary(d={depth})",
                        plan_name,
                        "inf" if cap is None else cap,
                        bound,
                        result.max_height,
                        result.injected,
                        result.delivered,
                        result.dropped,
                        self._causes(ledger),
                        "yes" if balanced else "NO",
                    ]
                )
        return ok

    def _resume_check(self, n: int, steps: int) -> tuple[bool, RunResult]:
        """Kill a faulty run mid-flight and resume it; the recovered run
        must finish with the same RunResult as the uninterrupted one."""
        plan = _path_plans(n, steps)["recoverable"]
        base_plan = FaultPlan(
            events=plan.events, random=plan.random, seed=plan.seed
        )
        halt_plan = FaultPlan(
            events=plan.events
            + (FaultEvent(kind=FaultKind.HALT, start=steps // 2),),
            random=plan.random,
            seed=plan.seed,
        )
        bound = math.ceil(odd_even_upper_bound(n))

        def build(p: FaultPlan) -> Simulator:
            from ..adversaries import SeesawAdversary
            from ..network.topology import path as path_topo

            return Simulator(
                path_topo(n),
                OddEvenPolicy(),
                SeesawAdversary(),
                buffer_capacity=bound,
                faults=p,
                validate=False,
            )

        uninterrupted = build(base_plan)
        expected = uninterrupted.run(steps)

        killed = build(halt_plan)
        recoveries = run_with_recovery(killed, steps, snapshot_every=25)
        got = killed.result()
        return recoveries >= 1 and got == expected, got

    # ------------------------------------------------------------------
    def _overlay(self, n: int, steps: int) -> dict[str, FaultPlan | None]:
        if self.faults is not None:
            # a user-supplied plan (repro run --faults) replaces the
            # built-in overlays, compared against the fault-free model.
            # Halt events are dropped from the sweep plan: the attack
            # driver cannot be resumed mid-schedule, and halt/resume
            # fidelity has its own dedicated check (_resume_check).
            survivable = FaultPlan(
                events=tuple(
                    e for e in self.faults.events
                    if e.kind is not FaultKind.HALT
                ),
                random=self.faults.random,
                seed=self.faults.seed,
            )
            return {"none": None, "user-plan": survivable}
        return _path_plans(n, steps)

    @staticmethod
    def _causes(ledger) -> str:
        by_cause = ledger.by_cause()
        if not by_cause:
            return "-"
        return ",".join(f"{c}:{k}" for c, k in sorted(by_cause.items()))

    def _run(self, preset: str) -> ExperimentResult:
        if preset == "quick":
            path_ns = [64]
            tree_depth, tree_steps = 5, 400
            resume_n, resume_steps = 33, 300
        else:
            path_ns = [64, 256, 1024]
            tree_depth, tree_steps = 7, 2000
            resume_n, resume_steps = 129, 1500

        rows: list[list] = []
        notes: list[str] = []
        ok = True
        for n in path_ns:
            ok &= self._path_sweep(n, rows, notes)
        ok &= self._tree_sweep(tree_depth, tree_steps, rows)

        resumed_ok, resumed = self._resume_check(resume_n, resume_steps)
        ok &= resumed_ok
        notes.append(
            "crash/resume: killed+resumed run finished "
            + ("identical" if resumed_ok else "DIFFERENT")
            + f" to the uninterrupted run ({resumed.delivered} delivered, "
            f"{resumed.dropped} dropped)"
        )

        return self._result(
            preset=preset,
            headers=[
                "topology", "plan", "cap", "bound", "max_h",
                "injected", "delivered", "dropped", "by cause", "balanced",
            ],
            rows=rows,
            passed=ok,
            notes=notes,
            params={
                "path_ns": path_ns,
                "tree_depth": tree_depth,
                "overlays": ["none", "recoverable", "lossy"]
                if self.faults is None
                else ["none", "user-plan"],
            },
        )
