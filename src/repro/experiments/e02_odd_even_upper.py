"""E2 — Theorem 4.13: Odd-Even stays below log₂ n + 3.

The scaling figure: worst measured max-height of Odd-Even over the
adversary suite *plus* the Theorem 3.1 attack, against the closed-form
bound, for n over several octaves.  The measured curve must (a) never
cross the bound and (b) classify as logarithmic.  Runs are additionally
*certified* (the attachment scheme is maintained and validated) at the
smaller sizes.
"""

from __future__ import annotations

from ..adversaries import RecursiveLowerBoundAttack, UniformRandomAdversary
from ..analysis import classify_growth, worst_case_over_suite
from ..core.bounds import odd_even_upper_bound
from ..core.certificate import certify_path_run
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..policies import OddEvenPolicy
from ..viz.ascii import series_plot
from .base import Experiment, standard_suite

__all__ = ["OddEvenUpperExperiment"]


class OddEvenUpperExperiment(Experiment):
    id = "E2"
    title = "Odd-Even upper bound: max buffer vs n"
    paper_ref = "Theorem 4.13"
    claim = "Odd-Even uses buffers of size at most log2(n) + 3 on directed paths."

    def _run(self, preset: str) -> ExperimentResult:
        if preset == "quick":
            ns = [16, 32, 64, 128, 256]
            suite_cap = 256  # run the 9-adversary suite up to this n
            cert_ns = [16, 32]
            cert_steps = 1500
        else:
            ns = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
            suite_cap = 2048  # beyond this only the (cheap) attack runs
            cert_ns = [16, 32, 64, 128]
            cert_steps = 20000

        rows = []
        measured = []
        for n in ns:
            engine = PathEngine(n, OddEvenPolicy(), None)
            attack = RecursiveLowerBoundAttack(ell=1).run(engine)
            m = attack.forced_height
            if n <= suite_cap:
                worst = worst_case_over_suite(
                    n, OddEvenPolicy, standard_suite(), 16 * n
                )
                m = max(m, worst.max_height)
            measured.append(m)
            bound = odd_even_upper_bound(n)
            rows.append([n, m, round(bound, 2), "yes" if m <= bound else "NO"])

        cert_ok = True
        for n in cert_ns:
            rep = certify_path_run(
                n, UniformRandomAdversary(seed=42), cert_steps
            )
            cert_ok &= rep.certified
            rows.append(
                [n, rep.max_height, rep.bound, f"certified({rep.rounds}r)"]
            )

        cls, power, logfit = classify_growth(ns, measured)
        within = all(
            m <= odd_even_upper_bound(n) for n, m in zip(ns, measured)
        )
        passed = within and cert_ok and cls.value in ("logarithmic", "constant")

        chart = series_plot(
            {
                "measured": (ns, measured),
                "log2(n)+3": (ns, [odd_even_upper_bound(n) for n in ns]),
            },
            log2_x=True,
            x_label="n",
            y_label="max height",
            title="E2: Odd-Even worst-case height vs bound",
        )
        return self._result(
            preset=preset,
            headers=["n", "max height", "bound", "within"],
            rows=rows,
            passed=passed,
            notes=[
                f"growth class: {cls.value} "
                f"(log fit: {logfit.slope:.2f}*log2 n + {logfit.intercept:.2f}, "
                f"R2={logfit.r_squared:.3f})",
                f"power exponent: {power.exponent:.3f}",
                f"certified runs clean: {cert_ok}",
            ],
            artifacts={"scaling chart": chart},
            params={"ns": ns, "certified_ns": cert_ns},
        )
