"""E6 — [23]'s anchor: Greedy needs Θ(n) buffers.

The seesaw workload (fill from the far end, then hammer the sink's
predecessor while the stream keeps arriving) drives greedy to ≈ n/2 —
a power law with exponent ≈ 1.  This is the linear baseline the
paper's Θ(log n) headline is measured against.
"""

from __future__ import annotations

from ..adversaries import SeesawAdversary
from ..analysis import classify_growth, measure_path
from ..io.results import ExperimentResult
from ..policies import GreedyPolicy
from ..viz.ascii import series_plot
from .base import Experiment

__all__ = ["GreedyLinearExperiment"]


class GreedyLinearExperiment(Experiment):
    id = "E6"
    title = "Greedy worst case ~ n (seesaw adversary)"
    paper_ref = "§1.1; Rosén & Scalosub [23]"
    claim = "The greedy policy requires Theta(n)-sized buffers on the line."

    def _run(self, preset: str) -> ExperimentResult:
        ns = [64, 128, 256] if preset == "quick" else [64, 256, 1024, 4096]

        rows = []
        measured = []
        for n in ns:
            res = measure_path(n, GreedyPolicy(), SeesawAdversary(), 4 * n)
            measured.append(res.max_height)
            rows.append(
                [n, res.max_height, round(res.max_height / n, 3),
                 res.argmax_node]
            )

        cls, power, _ = classify_growth(ns, measured)
        passed = (
            power.exponent >= 0.85
            and all(m >= n / 4 for n, m in zip(ns, measured))
        )
        chart = series_plot(
            {"measured": (ns, measured), "n/2": (ns, [n / 2 for n in ns])},
            log2_x=True,
            x_label="n",
            y_label="max height",
            title="E6: greedy under the seesaw",
        )
        return self._result(
            preset=preset,
            headers=["n", "max height", "height/n", "argmax node"],
            rows=rows,
            passed=passed,
            notes=[
                f"fitted exponent {power.exponent:.3f}; class {cls.value}",
                "the pile forms at the sink's predecessor, as in [23]",
            ],
            artifacts={"scaling chart": chart},
            params={"ns": ns},
        )
