"""E13 — the §4 proof machinery, live (paper Figures 1 and 2).

Runs a certified Odd-Even execution, keeps the attachment scheme, and
re-renders the paper's illustrative figures from *actual* certified
state: a tall node with its packets/slots/residues (Figure 1) and a
before/after of one round's pair processing (Figure 2).  The pass
criterion is the certificate itself: every round's matching and
attachment rules verified, and the Lemma 4.6 residue count consistent
with the observed maximum height.
"""

from __future__ import annotations

import numpy as np

from ..adversaries import RecursiveLowerBoundAttack
from ..core.bounds import path_residue_count
from ..core.certificate import OddEvenCertifier
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..policies import OddEvenPolicy
from ..viz.attachment_render import (
    render_configuration,
    render_node_attachments,
    render_pair_processing,
)
from .base import Experiment

__all__ = ["CertificateExperiment"]


class CertificateExperiment(Experiment):
    id = "E13"
    title = "Attachment-scheme certificate (Figures 1 and 2, live)"
    paper_ref = "§4.1–4.3; Figures 1, 2"
    claim = (
        "A balanced matching + attachment scheme can be maintained through "
        "every round of an Odd-Even execution; a height-m node implies "
        "2^(m-2)-1 distinct residues."
    )

    def _run(self, preset: str) -> ExperimentResult:
        n = 128 if preset == "quick" else 1024

        # Drive heights up with the real lower-bound attack while the
        # certifier maintains the proof object round by round (the
        # certificate state follows the attack's kept scenario through
        # every rollback).
        from ..core.certificate import CertifiedPathEngine

        cert = OddEvenCertifier(n - 1, validate_every=5)
        observed = CertifiedPathEngine(
            PathEngine(n, OddEvenPolicy(), None), cert
        )
        attack = RecursiveLowerBoundAttack(ell=1).run(observed)

        rep = cert.report
        peak_node = int(np.argmax(cert.heights))
        peak = int(cert.heights[peak_node])
        residues_now = len(cert.scheme.residues())
        lemma_ok = residues_now >= path_residue_count(peak)

        fig1 = render_node_attachments(cert.scheme, cert.heights, peak_node)
        fig2 = render_pair_processing(
            cert.scheme, cert.heights, cert.scheme, cert.heights,
            cert.last_matching,
        ) if cert.last_matching else "(no matching in final round)"
        config = render_configuration(cert.scheme, cert.heights)

        rows = [
            ["rounds certified", rep.rounds],
            ["max height", rep.max_height],
            ["mechanical bound", rep.bound],
            ["attack forced", attack.forced_height],
            ["final peak height", peak],
            ["residues (current)", residues_now],
            [f"Lemma 4.6 demand 2^({peak}-2)-1", path_residue_count(peak)],
            ["max residues seen", rep.max_residues],
        ]
        passed = rep.certified and lemma_ok and rep.rounds > 0
        return self._result(
            preset=preset,
            headers=["quantity", "value"],
            rows=rows,
            passed=passed,
            notes=[
                "the certificate is mechanical: a clean run proves the "
                "bound for this execution",
            ],
            artifacts={
                "figure 1 (peak node attachments)": fig1,
                "configuration with residues": config,
                "figure 2 (last round processing)": fig2,
            },
            params={"n": n},
        )
