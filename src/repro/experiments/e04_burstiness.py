"""E4 — Corollary 3.2: burstiness adds δ to the lower bound.

The same recursive attack, finished with a one-step δ-burst at the
tallest node of the final block.  The forced height must track
``(Theorem 3.1 value) + δ`` as δ grows — i.e. each unit of burstiness
buys the adversary one more packet of forced buffer.
"""

from __future__ import annotations

from ..adversaries import RecursiveLowerBoundAttack
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..policies import OddEvenPolicy
from .base import Experiment

__all__ = ["BurstinessExperiment"]


class BurstinessExperiment(Experiment):
    id = "E4"
    title = "Corollary 3.2: lower bound with burstiness delta"
    paper_ref = "Corollary 3.2"
    claim = (
        "With burstiness delta the adversary forces "
        "c(1 + (log n - 2 log ell - 1)/(2 ell)) + delta."
    )

    def _run(self, preset: str) -> ExperimentResult:
        n = 256 if preset == "quick" else 4096
        deltas = [0, 1, 2, 4, 8] if preset == "quick" else [0, 1, 2, 4, 8, 16, 32]

        rows = []
        ok = True
        base_forced: int | None = None
        for delta in deltas:
            engine = PathEngine(
                n, OddEvenPolicy(), None, injection_limit=1 + delta
            )
            rep = RecursiveLowerBoundAttack(ell=1, burst_delta=delta).run(
                engine
            )
            if delta == 0:
                base_forced = rep.forced_height
            meets = rep.forced_height >= rep.predicted
            additive = rep.forced_height >= base_forced + delta
            ok &= meets and additive
            rows.append(
                [
                    n,
                    delta,
                    rep.forced_height,
                    round(rep.predicted, 2),
                    "yes" if meets else "NO",
                    "yes" if additive else "NO",
                ]
            )
        return self._result(
            preset=preset,
            headers=["n", "delta", "forced", "predicted", "meets",
                     "additive (>= base + delta)"],
            rows=rows,
            passed=ok,
            params={"n": n, "deltas": deltas},
        )
