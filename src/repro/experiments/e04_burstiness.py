"""E4 — Corollary 3.2: burstiness adds δ to the lower bound.

The same recursive attack, finished with a one-step δ-burst at the
tallest node of the final block.  The forced height must track
``(Theorem 3.1 value) + δ`` as δ grows — i.e. each unit of burstiness
buys the adversary one more packet of forced buffer.

The attack's scenario choices depend only on heights, never on the
injection limit, so every δ-lane shares one kept trajectory and one
burst site.  The sweep therefore runs the recursive attack **once**
(δ = 0), reconstructs the kept injection script with
:func:`~repro.adversaries.lower_bound.kept_injection_schedule`, and
replays all δ > 0 lanes — script plus a terminal δ-burst — in lockstep
on a single :class:`~repro.network.fleet_engine.FleetEngine` (results
pinned bit-identical to per-δ attacks by the unit suite).
"""

from __future__ import annotations

import numpy as np

from ..adversaries import (
    RecursiveLowerBoundAttack,
    ScheduleAdversary,
    kept_injection_schedule,
)
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..network.fleet_engine import FleetEngine
from ..policies import OddEvenPolicy
from .base import Experiment

__all__ = ["BurstinessExperiment"]


class BurstinessExperiment(Experiment):
    id = "E4"
    title = "Corollary 3.2: lower bound with burstiness delta"
    paper_ref = "Corollary 3.2"
    claim = (
        "With burstiness delta the adversary forces "
        "c(1 + (log n - 2 log ell - 1)/(2 ell)) + delta."
    )

    def _run(self, preset: str) -> ExperimentResult:
        n = 256 if preset == "quick" else 4096
        deltas = [0, 1, 2, 4, 8] if preset == "quick" else [0, 1, 2, 4, 8, 16, 32]

        # one recursive attack (delta = 0) yields the shared kept
        # trajectory, the burst site and the base forced height ...
        engine = PathEngine(n, OddEvenPolicy(), None, injection_limit=1)
        rep0 = RecursiveLowerBoundAttack(ell=1).run(engine)
        base_forced = rep0.forced_height
        script = kept_injection_schedule(rep0, engine.topology)
        horizon = len(script)
        order = engine.topology.path_order()
        final = rep0.stages[-1]
        block = order[final.block_start : final.block_start + final.block_size]
        burst_site = int(block[int(np.argmax(engine.heights[block]))])

        # ... and every delta > 0 lane replays it on one fleet, each
        # with its own terminal burst and injection limit
        bursty = [d for d in deltas if d > 0]
        lanes = []
        for delta in bursty:
            lane_script = dict(script)
            lane_script[horizon] = (burst_site,) * (1 + delta)
            lanes.append(ScheduleAdversary(lane_script))
        fleet = FleetEngine(
            n,
            OddEvenPolicy(),
            lanes,
            injection_limit=[1 + d for d in bursty],
        )
        fleet.run(horizon + 1)
        forced = {0: base_forced}
        forced.update(zip(bursty, (int(m) for m in fleet.max_heights)))

        rows = []
        ok = True
        for delta in deltas:
            predicted = rep0.predicted + delta
            meets = forced[delta] >= predicted
            additive = forced[delta] >= base_forced + delta
            ok &= meets and additive
            rows.append(
                [
                    n,
                    delta,
                    forced[delta],
                    round(predicted, 2),
                    "yes" if meets else "NO",
                    "yes" if additive else "NO",
                ]
            )
        return self._result(
            preset=preset,
            headers=["n", "delta", "forced", "predicted", "meets",
                     "additive (>= base + delta)"],
            rows=rows,
            passed=ok,
            params={"n": n, "deltas": deltas},
        )
