"""E10 — [21]'s anchor: centralized trains need only σ + 2ρ buffers.

Runs the centralized train-forwarding policy under (ρ = 1, σ)
token-bucket adversaries (including opening σ-bursts) and verifies
buffers never exceed σ + 2, while Odd-Even — the best *local*
algorithm — needs Θ(log n) under the same model (Corollary 3.2).  The
contrast is the paper's headline motivation: locality costs exactly a
log factor.
"""

from __future__ import annotations

from ..adversaries import (
    FarEndAdversary,
    PreSinkAdversary,
    RoundRobinAdversary,
    SeesawAdversary,
    TokenBucketAdversary,
)
from ..core.bounds import centralized_upper_bound
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..policies import CentralizedTrainPolicy, OddEvenPolicy
from .base import Experiment

__all__ = ["CentralizedExperiment"]


class CentralizedExperiment(Experiment):
    id = "E10"
    title = "Centralized trains: buffers <= sigma + 2 under (1, sigma) traffic"
    paper_ref = "§1.1; Miller & Patt-Shamir [21]"
    claim = (
        "The centralized algorithm of [21] achieves no-loss gathering with "
        "buffers of size sigma + 2*rho; no local algorithm can match it "
        "(Theorem 3.1)."
    )

    def _run(self, preset: str) -> ExperimentResult:
        n = 128 if preset == "quick" else 1024
        sigmas = [0, 1, 2, 4] if preset == "quick" else [0, 1, 2, 4, 8, 16]
        inner_factories = (
            FarEndAdversary,
            PreSinkAdversary,
            SeesawAdversary,
            RoundRobinAdversary,
        )

        rows = []
        ok = True
        for sigma in sigmas:
            worst_central = 0
            worst_odd_even = 0
            for make_inner in inner_factories:
                for policy_cls, tracker in (
                    (CentralizedTrainPolicy, "central"),
                    (OddEvenPolicy, "oddeven"),
                ):
                    adv = TokenBucketAdversary(
                        make_inner(), rho=1, sigma=sigma, greedy=True
                    )
                    engine = PathEngine(
                        n,
                        policy_cls(),
                        adv,
                        injection_limit=1 + sigma,
                    )
                    engine.run(8 * n)
                    if tracker == "central":
                        worst_central = max(worst_central, engine.max_height)
                    else:
                        worst_odd_even = max(worst_odd_even, engine.max_height)
            bound = centralized_upper_bound(sigma, rho=1)
            within = worst_central <= bound
            ok &= within
            rows.append(
                [sigma, worst_central, bound, "yes" if within else "NO",
                 worst_odd_even]
            )

        constant = all(r[1] <= centralized_upper_bound(s) for s, r in
                       zip(sigmas, rows))
        return self._result(
            preset=preset,
            headers=["sigma", "centralized max", "sigma+2", "within",
                     "odd-even max (same traffic)"],
            rows=rows,
            passed=ok and constant,
            notes=[
                "centralized buffers are independent of n (constant in "
                "sigma); the local algorithm pays the Theorem 3.1 log factor",
            ],
            params={"n": n, "sigmas": sigmas},
        )
