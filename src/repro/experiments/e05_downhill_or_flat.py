"""E5 — Theorem 4.1: Downhill-or-Flat is Θ(√n).

Both directions of the Θ:

* *lower*: the strongest adversary in the toolbox (the recursive
  attack, plus the plateau/pressure heuristics) forces heights that fit
  a power law with exponent ≈ ½ over an n sweep;
* *upper*: no adversary in the toolbox ever pushes Downhill-or-Flat
  past a small multiple of √n.

The paper omits the proof; this experiment is the executable form of
the claim.
"""

from __future__ import annotations

import math

from ..adversaries import RecursiveLowerBoundAttack
from ..analysis import classify_growth, worst_case_over_suite
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..policies import DownhillOrFlatPolicy
from ..viz.ascii import series_plot
from .base import Experiment, standard_suite

__all__ = ["DownhillOrFlatExperiment"]


class DownhillOrFlatExperiment(Experiment):
    id = "E5"
    title = "Downhill-or-Flat worst case ~ sqrt(n)"
    paper_ref = "Theorem 4.1"
    claim = "Algorithm Downhill-or-Flat uses buffers of size Theta(sqrt n)."

    UPPER_FACTOR = 3.0  # no measured point may exceed 3*sqrt(n)

    def _run(self, preset: str) -> ExperimentResult:
        if preset == "quick":
            ns = [64, 256, 1024]
            suite_cap = 1024
        else:
            ns = [64, 256, 1024, 4096, 16384]
            suite_cap = 4096  # the attack alone probes the largest size

        rows = []
        measured = []
        for n in ns:
            engine = PathEngine(n, DownhillOrFlatPolicy(), None)
            attack = RecursiveLowerBoundAttack(ell=1).run(engine)
            m = attack.forced_height
            if n <= suite_cap:
                worst = worst_case_over_suite(
                    n, DownhillOrFlatPolicy, standard_suite(), 24 * n
                ).max_height
                m = max(m, worst)
            measured.append(m)
            rows.append(
                [n, m, round(math.sqrt(n), 1), round(m / math.sqrt(n), 2)]
            )

        cls, power, _ = classify_growth(ns, measured)
        exponent_ok = 0.3 <= power.exponent <= 0.7
        upper_ok = all(
            m <= self.UPPER_FACTOR * math.sqrt(n)
            for n, m in zip(ns, measured)
        )
        passed = exponent_ok and upper_ok

        chart = series_plot(
            {
                "measured": (ns, measured),
                "sqrt(n)": (ns, [math.sqrt(n) for n in ns]),
            },
            log2_x=True,
            x_label="n",
            y_label="max height",
            title="E5: Downhill-or-Flat vs sqrt(n)",
        )
        return self._result(
            preset=preset,
            headers=["n", "max height", "sqrt(n)", "ratio"],
            rows=rows,
            passed=passed,
            notes=[
                f"fitted exponent {power.exponent:.3f} "
                f"(sqrt family needs ~0.5); growth class: {cls.value}",
                f"upper check: every point <= {self.UPPER_FACTOR}*sqrt(n): "
                f"{upper_ok}",
            ],
            artifacts={"scaling chart": chart},
            params={"ns": ns},
        )
