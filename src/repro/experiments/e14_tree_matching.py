"""E14 — Algorithm 6 in action (paper Figure 3).

Reconstructs a Figure 3-style situation: a tree whose injected line
blocks at an intersection, forcing a crossover pair, whose re-pairing
cascades to a second crossover.  The artefact is the rendered line
decomposition and matching from a real certified round; the pass
criterion is that certified runs on the figure's shape produce
crossover pairs and the matching always verifies (Lemma 5.1/5.3).
"""

from __future__ import annotations

import numpy as np

from ..adversaries import LeafSweepAdversary, UniformRandomAdversary
from ..core.tree_certificate import certify_tree_run
from ..core.tree_matching import (
    build_tree_matching,
    classify_tree_round,
    decompose_lines,
    verify_tree_matching,
)
from ..io.results import ExperimentResult
from ..network.events import TraceRecorder
from ..network.tree_engine import TreeEngine
from ..network.topology import spider
from ..policies import TreeOddEvenPolicy
from ..viz.tree_render import render_tree, render_tree_matching
from .base import Experiment

__all__ = ["TreeMatchingExperiment"]


class TreeMatchingExperiment(Experiment):
    id = "E14"
    title = "Tree balanced matching with crossover pairs (Figure 3, live)"
    paper_ref = "§5; Algorithm 6; Figure 3"
    claim = (
        "The per-line matchings plus crossover pairs form a balanced "
        "matching on trees (Lemma 5.1), with pair heights per Lemma 5.3."
    )

    def _run(self, preset: str) -> ExperimentResult:
        topo = spider(3, 4) if preset == "quick" else spider(5, 8)
        steps = 400 if preset == "quick" else 2000

        # find a round with at least one crossover pair and render it
        trace = TraceRecorder()
        sim = TreeEngine(
            topo, TreeOddEvenPolicy(), UniformRandomAdversary(seed=4),
            trace=trace,
        )
        rendered = "(no crossover round found)"
        crossovers_seen = 0
        rounds_verified = 0
        for _ in range(steps):
            sim.step()
            rec = trace[-1]
            inj = rec.injections[0] if rec.injections else None
            decomp = decompose_lines(
                topo, rec.heights_before, rec.sends, inj
            )
            matching = build_tree_matching(
                topo, rec.heights_before, rec.heights_after, decomp, inj
            )
            kinds = classify_tree_round(
                rec.heights_before, rec.heights_after, topo
            )
            verify_tree_matching(matching, topo, rec.heights_before, kinds)
            rounds_verified += 1
            n_cross = sum(1 for p in matching.pairs if p.crossover)
            if n_cross > crossovers_seen:
                crossovers_seen = n_cross
                rendered = render_tree_matching(
                    topo, decomp, matching,
                    np.asarray(rec.heights_before),
                )

        # certified end-to-end runs on the same family
        cert = certify_tree_run(topo, LeafSweepAdversary(), steps,
                                validate_every=5)

        rows = [
            ["rounds verified (matching)", rounds_verified],
            ["max crossovers in one round", crossovers_seen],
            ["certified rounds", cert.rounds],
            ["certified max height", cert.max_height],
            ["mechanical bound", cert.bound],
            ["certified crossover pairs", cert.crossover_pairs],
        ]
        passed = (
            crossovers_seen >= 1 and cert.certified and rounds_verified == steps
        )
        return self._result(
            preset=preset,
            headers=["quantity", "value"],
            rows=rows,
            passed=passed,
            artifacts={
                "tree": render_tree(topo),
                "figure 3 (crossover round)": rendered,
            },
            params={"spider": (topo.n,), "steps": steps},
        )
