"""E17 — the §6 open question: does any of this generalise to DAGs?

The conclusions ask whether the paper's algorithms extend "to arbitrary
routing patterns, or to DAGs" (the concurrent work [22] studies acyclic
networks).  This experiment explores the question on the DAG substrate
(:mod:`repro.network.dag`):

1. **Consistency** — on a degenerate DAG (a path viewed as a DAG) the
   DAG engine + DAG Odd-Even reproduce the path results exactly: the
   Theorem 3.1 attack forces Θ(log n) against DAG Odd-Even and Θ(n)
   against DAG Greedy.
2. **Redundancy relief** — on width-W layered DAGs and diamond grids,
   the same attack forces *less* as W grows: the block-density argument
   leaks through the extra edges, i.e. the Ω(log n) bound as
   constructed does not transfer to DAGs with genuine path diversity.
   (A rate-1 adversary against a width-W cut is simply underpowered.)
3. **Bounded behaviour** — across all families and workloads, DAG
   Odd-Even is never observed above the tree bound 2·log₂ n + O(1).

Exploratory evidence on an open problem; recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from ..adversaries import (
    FarEndAdversary,
    FixedNodeAdversary,
    PhasedAdversary,
    RecursiveLowerBoundAttack,
    RoundRobinAdversary,
    UniformRandomAdversary,
)
from ..core.bounds import theorem_3_1_lower_bound, tree_upper_bound
from ..io.results import ExperimentResult
from ..network.dag import (
    DagTopology,
    diamond_grid,
    from_tree,
    layered_dag,
    tree_with_shortcuts,
)
from ..network.dag_engine import DagEngine
from ..network.topology import path, random_tree
from ..policies.dag import DagGreedyPolicy, DagOddEvenPolicy
from .base import Experiment

__all__ = ["DagExperiment"]


def _suite_max(dag: DagTopology, policy_cls, steps: int) -> int:
    """Worst height over the DAG-compatible adversary suite."""
    worst = 0
    pre_sink_feeders = [
        v for v in range(dag.n) if dag.sink in dag.out_edges[v]
    ]
    adversaries = [
        FarEndAdversary(),
        UniformRandomAdversary(seed=3),
        RoundRobinAdversary(),
        PhasedAdversary(
            [(dag.n, FarEndAdversary()),
             (dag.n, FixedNodeAdversary(pre_sink_feeders[0]))]
        ),
    ]
    for adv in adversaries:
        engine = DagEngine(dag, policy_cls(), adv)
        engine.run(steps)
        engine.assert_conservation()
        worst = max(worst, engine.max_height)
    return worst


class DagExperiment(Experiment):
    id = "E17"
    title = "DAG generalisation (open question of §6)"
    paper_ref = "§6 Conclusions (open problem); cf. [22]"
    claim = (
        "Exploration: DAG Odd-Even matches the path results on "
        "degenerate DAGs, path redundancy weakens the Theorem 3.1 "
        "attack, and DAG Odd-Even stays within the tree bound on every "
        "tested family."
    )

    def _run(self, preset: str) -> ExperimentResult:
        n_path = 256 if preset == "quick" else 1024
        grid_sizes = (
            [(1, 64), (2, 32), (4, 16)]
            if preset == "quick"
            else [(1, 256), (2, 128), (4, 64), (8, 32)]
        )

        rows = []
        ok = True

        # --- 1. degenerate DAG ≡ path -------------------------------
        degenerate = from_tree(path(n_path))
        for policy_cls, expect in (
            (DagOddEvenPolicy, "log"),
            (DagGreedyPolicy, "linear"),
        ):
            engine = DagEngine(degenerate, policy_cls(), None)
            rep = RecursiveLowerBoundAttack(ell=1).run(engine)
            if expect == "log":
                good = (
                    rep.forced_height >= theorem_3_1_lower_bound(n_path, 1, 1)
                    and rep.forced_height <= tree_upper_bound(n_path)
                )
            else:
                good = rep.forced_height >= n_path / 4
            ok &= good
            rows.append(
                ["degenerate path", n_path, policy_cls().name,
                 rep.forced_height, round(rep.predicted, 2),
                 "yes" if good else "NO"]
            )

        # --- 2. redundancy relief on grids ---------------------------
        forced_by_width = {}
        for w, length in grid_sizes:
            dag = diamond_grid(w, length)
            engine = DagEngine(dag, DagOddEvenPolicy(), None)
            rep = RecursiveLowerBoundAttack(ell=1).run(engine)
            forced_by_width[w] = rep.forced_height
            rows.append(
                [f"diamond grid W={w}", dag.n, "dag-odd-even",
                 rep.forced_height, round(rep.predicted, 2), ""]
            )
        widths = sorted(forced_by_width)
        relief = all(
            forced_by_width[a] >= forced_by_width[b]
            for a, b in zip(widths, widths[1:])
        )
        ok &= relief

        # --- 3. bounded behaviour across families --------------------
        families = [
            ("layered(8x8,k=2)", layered_dag(8, 8, 2, seed=5)),
            ("tree+shortcuts", tree_with_shortcuts(
                random_tree(64 if preset == "quick" else 256, seed=6),
                16, seed=7)),
            ("diamond(4x16)", diamond_grid(4, 16)),
        ]
        for name, dag in families:
            worst = _suite_max(dag, DagOddEvenPolicy, 10 * dag.n)
            bound = tree_upper_bound(dag.n)
            good = worst <= bound
            ok &= good
            rows.append(
                [name, dag.n, "dag-odd-even", worst, bound,
                 "yes" if good else "NO"]
            )

        return self._result(
            preset=preset,
            headers=["family", "n", "policy", "max height",
                     "reference", "within"],
            rows=rows,
            passed=ok,
            notes=[
                "the attack's block-density argument leaks through extra "
                "edges: forced height is non-increasing in grid width "
                f"({ {w: forced_by_width[w] for w in widths} }) — the "
                "Omega(log n) construction does not transfer to DAGs "
                "with genuine path diversity",
                "DAG Odd-Even stayed within the tree bound on every "
                "family; consistency with the path theorems holds on "
                "degenerate DAGs",
            ],
            params={"n_path": n_path, "grids": grid_sizes},
        )
