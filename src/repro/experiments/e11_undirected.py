"""E11 — Theorem 3.3: bidirectional links do not beat Ω(log n).

Runs the recursive attack against bidirectional policies on the
undirected-path engine.  The paper proves (proof omitted) that the
lower bound survives with a constant ≈ 4× worse; empirically the
attack still forces heights that grow with log n against the
height-balancing policy, and the directed-as-undirected control matches
the directed numbers exactly.
"""

from __future__ import annotations

from ..adversaries import RecursiveLowerBoundAttack
from ..analysis import classify_growth
from ..core.bounds import theorem_3_1_lower_bound
from ..io.results import ExperimentResult
from ..network.engine_fast import UndirectedPathEngine
from ..policies import (
    DirectedAsUndirected,
    HeightBalancingPolicy,
    OddEvenPolicy,
)
from .base import Experiment

__all__ = ["UndirectedExperiment"]


class UndirectedExperiment(Experiment):
    id = "E11"
    title = "Undirected paths: the log n barrier survives (Theorem 3.3)"
    paper_ref = "Theorem 3.3"
    claim = (
        "Any ell-local algorithm on an undirected path still needs "
        "Omega(c log n / ell) buffers (constant ~4x weaker)."
    )

    def _run(self, preset: str) -> ExperimentResult:
        ns = [64, 256, 1024] if preset == "quick" else [64, 256, 1024, 4096]

        rows = []
        forced_balancing = []
        ok = True
        for n in ns:
            quarter_bound = theorem_3_1_lower_bound(n, 1, 1) / 4.0
            for label, policy in (
                ("height-balancing", HeightBalancingPolicy()),
                ("directed-control", DirectedAsUndirected(OddEvenPolicy())),
            ):
                engine = UndirectedPathEngine(n, policy, None)
                rep = RecursiveLowerBoundAttack(ell=1).run(engine)
                meets = rep.forced_height >= quarter_bound
                ok &= meets
                if label == "height-balancing":
                    forced_balancing.append(rep.forced_height)
                rows.append(
                    [n, label, rep.forced_height,
                     round(quarter_bound, 2), "yes" if meets else "NO"]
                )

        cls, power, logfit = classify_growth(ns, forced_balancing)
        grows = logfit.slope > 0.2
        return self._result(
            preset=preset,
            headers=["n", "policy", "forced", "bound/4", "meets"],
            rows=rows,
            passed=ok and grows,
            notes=[
                f"height-balancing forced-height log fit: "
                f"{logfit.slope:.2f}*log2 n + {logfit.intercept:.2f} "
                f"(R2={logfit.r_squared:.3f}; class {cls.value})",
                "sending packets away from the sink does not break the "
                "barrier, as Theorem 3.3 states",
            ],
            params={"ns": ns},
        )
