"""Experiment harness scaffolding.

Each experiment (see DESIGN.md §4 for the index) subclasses
:class:`Experiment` and regenerates one of the paper's theorem-level
artefacts at two presets:

* ``quick`` — CI-sized, seconds; used by the test-suite and the
  pytest-benchmark harness;
* ``full`` — paper-scale sweeps used to produce EXPERIMENTS.md.

An experiment's ``passed`` verdict encodes the *shape* of the paper's
claim (who wins, growth class, bound respected) — absolute constants
are reported but never asserted.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..adversaries import (
    Adversary,
    BackfillAdversary,
    FarEndAdversary,
    MaxHeightChaserAdversary,
    OnOffAdversary,
    PreSinkAdversary,
    PressureAdversary,
    RoundRobinAdversary,
    SeesawAdversary,
    UniformRandomAdversary,
)
from ..errors import ExperimentError
from ..io.results import ExperimentResult
from ..network.faults import FaultPlan

__all__ = ["Experiment", "standard_suite", "PRESETS"]

PRESETS = ("quick", "full")


def standard_suite(seed: int = 0) -> list[Adversary]:
    """The adversary suite used for "worst over the suite" sweeps.

    Covers the archetypes from the paper and its references: far-end
    streams (anti-Downhill/FIE), the seesaw (anti-Greedy), plateau
    pressure (anti-Downhill-or-Flat), adaptive hill-climbers, plus
    benign random/periodic traffic.
    """
    return [
        FarEndAdversary(),
        PreSinkAdversary(),
        SeesawAdversary(),
        PressureAdversary(),
        MaxHeightChaserAdversary(),
        BackfillAdversary(),
        RoundRobinAdversary(),
        OnOffAdversary(node=1, on=5, off=2),
        UniformRandomAdversary(seed=seed),
    ]


class Experiment(ABC):
    """One reproducible paper artefact."""

    id: str = "E0"
    title: str = "abstract experiment"
    paper_ref: str = ""
    claim: str = ""

    #: optional fault plan threaded in by the CLI (``repro run --faults``).
    #: Experiments that simulate (rather than only compute) may consult it;
    #: ``None`` means the faithful fault-free model.
    faults: FaultPlan | None = None

    def run(
        self, preset: str = "quick", *, faults: FaultPlan | None = None
    ) -> ExperimentResult:
        """Execute at the given preset and return the result record.

        ``faults`` (optional) is a :class:`~repro.network.faults.FaultPlan`
        made available to the experiment as ``self.faults`` — experiments
        that drive engines may thread it through; pure-analysis
        experiments ignore it.
        """
        if preset not in PRESETS:
            raise ExperimentError(
                f"unknown preset {preset!r}; choose from {PRESETS}"
            )
        if faults is not None:
            self.faults = faults
        return self._run(preset)

    @abstractmethod
    def _run(self, preset: str) -> ExperimentResult:
        ...

    def _result(
        self,
        *,
        preset: str,
        headers: Sequence[str],
        rows: Sequence[Sequence],
        passed: bool,
        notes: Sequence[str] = (),
        artifacts: dict[str, str] | None = None,
        params: dict | None = None,
    ) -> ExperimentResult:
        return ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.claim,
            headers=list(headers),
            rows=[list(r) for r in rows],
            passed=passed,
            preset=preset,
            notes=list(notes),
            artifacts=dict(artifacts or {}),
            params=dict(params or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Experiment {self.id}: {self.title}>"
