"""E18 — adversarial-queuing stability (§1.1, Borodin et al. [11]).

The founding question of adversarial queuing theory: is a policy
*stable* — do buffers stay bounded by a constant independent of the
input stream length?  §1.1 recalls that every greedy discipline is
stable for rate-1 adversaries on DAGs [11] (with possibly huge
constants), whereas [21] shows local FIE is *unstable* even on the
directed path.

This experiment probes stability empirically with doubling horizons
(:func:`repro.analysis.probe_stability`): a policy is flagged unstable
when its running maximum keeps climbing as the horizon doubles.
Expected shape:

* Odd-Even, Downhill-or-Flat, Downhill, Greedy, Centralized: stable
  (greedy's bound is Θ(n) — big, but a constant for fixed n);
* local FIE: unstable under a far-end stream (buffer ≈ t/2 forever).
"""

from __future__ import annotations

from ..adversaries import FarEndAdversary, SeesawAdversary, UniformRandomAdversary
from ..analysis import probe_stability_suite
from ..io.results import ExperimentResult
from ..policies import (
    CentralizedTrainPolicy,
    DownhillOrFlatPolicy,
    DownhillPolicy,
    ForwardIfEmptyPolicy,
    GreedyPolicy,
    OddEvenPolicy,
)
from .base import Experiment

__all__ = ["StabilityExperiment"]


class StabilityExperiment(Experiment):
    id = "E18"
    title = "Stability in the adversarial-queuing sense ([11])"
    paper_ref = "§1.1; Borodin et al. [11]; Miller & Patt-Shamir [21]"
    claim = (
        "Every greedy/comparison policy here is stable for rate-1 "
        "traffic on the directed path; local Forward-If-Empty is not."
    )

    POLICIES = (
        (OddEvenPolicy, True),
        (DownhillOrFlatPolicy, True),
        (DownhillPolicy, True),
        (GreedyPolicy, True),
        (CentralizedTrainPolicy, True),
        (ForwardIfEmptyPolicy, False),
    )

    def _run(self, preset: str) -> ExperimentResult:
        n = 32 if preset == "quick" else 64
        doublings = 4
        adversaries = (
            FarEndAdversary(),
            SeesawAdversary(),
            UniformRandomAdversary(seed=17),
        )

        rows = []
        ok = True
        for policy_cls, expect_stable in self.POLICIES:
            # unstable iff *any* workload drives unbounded growth.
            # Horizons start at 2n^2: Downhill's staircase needs
            # Theta(n^2) steps to saturate at its (large but constant)
            # n-1 bound, and the tolerance of 2 absorbs the slow
            # running-max creep of stationary stochastic traffic.
            # the whole adversary suite probes in lockstep on one
            # FleetEngine (see probe_stability_suite)
            verdicts = probe_stability_suite(
                n, policy_cls, adversaries, base_horizon=2 * n * n,
                doublings=doublings, tolerance=2,
            )
            worst_rate = max(v.growth_rate for v in verdicts)
            final_max = max(v.final_max for v in verdicts)
            stable = all(v.stable for v in verdicts)
            good = stable == expect_stable
            ok &= good
            rows.append(
                [
                    policy_cls().name,
                    "stable" if expect_stable else "UNSTABLE",
                    "stable" if stable else "UNSTABLE",
                    final_max,
                    round(worst_rate, 3),
                    "yes" if good else "NO",
                ]
            )

        return self._result(
            preset=preset,
            headers=["policy", "expected ([11]/[21])", "measured",
                     "max height", "tail growth/step", "matches"],
            rows=rows,
            passed=ok,
            notes=[
                f"doubling-horizon probe on a {n}-node path, "
                f"{doublings} doublings; 'tail growth/step' is the "
                "height increase per step over the last doubling",
                "FIE's ~0.5/step growth is [21]'s unboundedness; "
                "greedy is stable with a Theta(n) constant, exactly as "
                "[11] proves for rate-1 DAGs",
            ],
            params={"n": n, "doublings": doublings},
        )
