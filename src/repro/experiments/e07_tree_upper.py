"""E7 — Theorem 5.11: the Tree algorithm stays O(log n).

Certified runs of Algorithm 5 on several tree families (spiders,
balanced binary, caterpillars, random recursive trees), plus the
Theorem 3.1 attack driven along each tree's spine.  Measured maxima
must stay below the mechanical even-residue bound
(:func:`repro.core.bounds.tree_upper_bound`, ≈ 2 log₂ n + O(1)) and
classify as logarithmic across sizes.
"""

from __future__ import annotations

from ..adversaries import (
    HeavyBranchAdversary,
    LeafSweepAdversary,
    RecursiveLowerBoundAttack,
    TreeSeesawAdversary,
    UniformRandomAdversary,
)
from ..analysis import classify_growth
from ..core.bounds import tree_upper_bound
from ..core.tree_certificate import certify_tree_run
from ..io.results import ExperimentResult
from ..network.tree_engine import TreeEngine
from ..network.topology import Topology, balanced_tree, caterpillar, random_tree, spider
from ..policies import TreeOddEvenPolicy
from .base import Experiment

__all__ = ["TreeUpperExperiment"]


def _families(preset: str) -> list[tuple[str, Topology]]:
    if preset == "quick":
        return [
            ("spider(4x8)", spider(4, 8)),
            ("binary(d=5)", balanced_tree(2, 5)),
            ("caterpillar(16x2)", caterpillar(16, 2)),
            ("random(n=64)", random_tree(64, seed=11)),
        ]
    return [
        ("spider(8x32)", spider(8, 32)),
        ("spider(16x16)", spider(16, 16)),
        ("binary(d=8)", balanced_tree(2, 8)),
        ("ternary(d=5)", balanced_tree(3, 5)),
        ("caterpillar(64x3)", caterpillar(64, 3)),
        ("random(n=256)", random_tree(256, seed=11)),
        ("random(n=1024)", random_tree(1024, seed=12)),
    ]


class TreeUpperExperiment(Experiment):
    id = "E7"
    title = "Tree algorithm: max buffer vs tree size (certified)"
    paper_ref = "Theorem 5.11"
    claim = "Algorithm Tree uses buffers of size O(log n) on directed trees."

    def _run(self, preset: str) -> ExperimentResult:
        steps_mult = 12 if preset == "quick" else 24
        rows = []
        all_ok = True
        sizes = []
        maxima = []
        for name, topo in _families(preset):
            worst = 0
            certified = True
            for adv in (
                LeafSweepAdversary(),
                HeavyBranchAdversary(),
                TreeSeesawAdversary(),
                UniformRandomAdversary(seed=5),
            ):
                rep = certify_tree_run(topo, adv, steps_mult * topo.n,
                                       validate_every=10)
                worst = max(worst, rep.max_height)
                certified &= rep.certified
            # spine attack (uncertified driver; measures forced height)
            sim = TreeEngine(topo, TreeOddEvenPolicy(), None)
            try:
                attack = RecursiveLowerBoundAttack(ell=2).run(sim)
                forced = attack.forced_height
            except Exception:
                forced = 0  # spine too short for the attack
            worst = max(worst, forced)
            bound = tree_upper_bound(topo.n)
            ok = worst <= bound and certified
            all_ok &= ok
            sizes.append(topo.n)
            maxima.append(worst)
            rows.append(
                [name, topo.n, topo.height, worst, bound,
                 "yes" if ok else "NO"]
            )

        cls, power, _ = classify_growth(sizes, maxima)
        growth_ok = power.exponent < 0.4
        return self._result(
            preset=preset,
            headers=["family", "n", "depth", "max height", "bound", "within"],
            rows=rows,
            passed=all_ok and growth_ok,
            notes=[
                f"growth exponent over families: {power.exponent:.3f} "
                f"(class {cls.value})",
                "bound is the even-residue count inversion "
                "(~2 log2 n + O(1))",
            ],
            params={"steps_mult": steps_mult},
        )
