"""The experiment harness: one module per regenerated paper artefact.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
recorded paper-vs-measured outcomes.  Run from the CLI::

    python -m repro run E2 --preset quick
    python -m repro run all --preset full --out results/
"""

from .base import Experiment, standard_suite
from .registry import EXPERIMENTS, all_experiment_ids, get_experiment

__all__ = [
    "Experiment",
    "standard_suite",
    "EXPERIMENTS",
    "get_experiment",
    "all_experiment_ids",
]
