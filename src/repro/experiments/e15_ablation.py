"""E15 — ablations of the design choices behind Odd-Even.

Two sweeps:

1. **Modulus ablation.**  Odd-Even is the m = 2 member of the modular
   family "forward on flat iff h mod m ∈ S".  Neighbouring members are
   exactly the paper's baselines (m = 1 strict ≡ Downhill, m = 1
   permissive ≡ Downhill-or-Flat); larger moduli re-introduce long flat
   conduction bands.  The attack + suite measure each member's worst
   case across n — only the m = 2 alternation stays logarithmic.
2. **Tie-rule ablation (trees).**  Algorithm 5 says equal-height
   sibling ties may be broken "arbitrarily"; we verify min-id, max-id
   and round-robin all keep the certified bound.
"""

from __future__ import annotations

from ..adversaries import LeafSweepAdversary, RecursiveLowerBoundAttack
from ..analysis import classify_growth, worst_case_over_suite
from ..core.tree_certificate import certify_tree_run
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..network.topology import spider
from ..policies import ModularPolicy
from .base import Experiment, standard_suite

__all__ = ["AblationExperiment"]

VARIANTS = (
    ("downhill (m=1, never flat)", lambda: ModularPolicy(1, ())),
    ("downhill-or-flat (m=1, always)", lambda: ModularPolicy(1, (0,))),
    ("odd-even (m=2, odd)", lambda: ModularPolicy(2, (1,))),
    ("m=2, even", lambda: ModularPolicy(2, (0,))),
    ("m=3, {1,2}", lambda: ModularPolicy(3, (1, 2))),
    ("m=4, {1,3}", lambda: ModularPolicy(4, (1, 3))),
)


class AblationExperiment(Experiment):
    id = "E15"
    title = "Ablations: modulus family and sibling tie rules"
    paper_ref = "design choices behind Algorithms 1 and 5"
    claim = (
        "The mod-2 alternation is what buys Theta(log n): the m=1 "
        "neighbours degrade to sqrt(n)/linear, and the 'arbitrary' tie "
        "rule of Algorithm 5 is genuinely arbitrary."
    )

    def _run(self, preset: str) -> ExperimentResult:
        ns = [64, 256, 1024] if preset == "quick" else [64, 256, 1024, 4096]

        rows = []
        classes = {}
        for label, factory in VARIANTS:
            measured = []
            for n in ns:
                worst = worst_case_over_suite(
                    n, factory, standard_suite(), 16 * n
                ).max_height
                engine = PathEngine(n, factory(), None)
                attack = RecursiveLowerBoundAttack(ell=1).run(engine)
                measured.append(max(worst, attack.forced_height))
            cls, power, _ = classify_growth(ns, measured)
            classes[label] = (cls.value, power.exponent)
            rows.append([label, *measured, cls.value,
                         round(power.exponent, 2)])

        odd_even_log = classes["odd-even (m=2, odd)"][0] in (
            "logarithmic", "constant"
        )
        neighbours_worse = all(
            classes[k][1] > classes["odd-even (m=2, odd)"][1] + 0.1
            for k in ("downhill (m=1, never flat)",
                      "downhill-or-flat (m=1, always)")
        )

        # tie-rule ablation on a spider
        topo = spider(4, 6) if preset == "quick" else spider(8, 16)
        tie_ok = True
        for rule in ("min_id", "max_id", "round_robin"):
            rep = certify_tree_run(
                topo, LeafSweepAdversary(), 8 * topo.n,
                tie_rule=rule, validate_every=10,
            )
            tie_ok &= rep.certified
            rows.append([f"tree tie rule: {rule}", rep.max_height,
                         *([""] * (len(ns) - 1)), "certified",
                         rep.bound])

        passed = odd_even_log and neighbours_worse and tie_ok
        return self._result(
            preset=preset,
            headers=["variant", *[f"n={n}" for n in ns], "growth",
                     "exponent"],
            rows=rows,
            passed=passed,
            notes=[
                f"odd-even classified {classes['odd-even (m=2, odd)'][0]}; "
                "m=1 neighbours have strictly larger exponents: "
                f"{neighbours_worse}",
                f"all sibling tie rules certified on the spider: {tie_ok}",
            ],
            params={"ns": ns},
        )
