"""E9 — model-semantics robustness of the Odd-Even bound.

The paper's mini-step wording admits two readings of when forwarding
decisions are computed (see DESIGN.md §3).  The proof analyses
pre-injection decisions; this experiment verifies the *measured* bound
also holds under post-injection decisions, and that the queueing
discipline (FIFO vs LIFO) — which the height bounds ignore — indeed
leaves heights untouched while changing delays.

Each timing's adversary-suite sweep runs as one lockstep
:class:`~repro.network.fleet_engine.FleetEngine` pass (via the
fleet-backed :func:`~repro.analysis.worst_case_over_suite`); the
timing itself is threaded through to every lane of the fleet.
"""

from __future__ import annotations

from ..adversaries import RecursiveLowerBoundAttack, UniformRandomAdversary
from ..analysis import measure_delays, worst_case_over_suite
from ..core.bounds import odd_even_upper_bound
from ..io.results import ExperimentResult
from ..network.engine_fast import PathEngine
from ..policies import OddEvenPolicy
from .base import Experiment, standard_suite

__all__ = ["TimingRobustnessExperiment"]


class TimingRobustnessExperiment(Experiment):
    id = "E9"
    title = "Odd-Even bound under both decision timings and disciplines"
    paper_ref = "§2 (model); DESIGN.md substitution 1"
    claim = (
        "The log2(n)+3 bound is insensitive to whether forwarding "
        "decisions see the current step's injection, and to the buffer "
        "service discipline."
    )

    SLACK = 1  # packets of slack allowed for the post-injection reading

    def _run(self, preset: str) -> ExperimentResult:
        ns = [64, 256] if preset == "quick" else [64, 256, 1024, 4096]

        rows = []
        ok = True
        for n in ns:
            bound = odd_even_upper_bound(n)
            for timing in ("pre_injection", "post_injection"):
                worst = worst_case_over_suite(
                    n, OddEvenPolicy, standard_suite(), 16 * n,
                    decision_timing=timing,
                ).max_height
                engine = PathEngine(
                    n, OddEvenPolicy(), None, decision_timing=timing
                )
                attack = RecursiveLowerBoundAttack(ell=1).run(engine)
                m = max(worst, attack.forced_height)
                limit = bound + (self.SLACK if timing == "post_injection" else 0)
                within = m <= limit
                ok &= within
                rows.append(
                    [n, timing, m, round(limit, 2), "yes" if within else "NO"]
                )

        # discipline: heights identical, delays differ
        n = ns[0]
        fifo = measure_delays(
            n, OddEvenPolicy(), UniformRandomAdversary(seed=9), 8 * n,
            discipline="fifo",
        )
        lifo = measure_delays(
            n, OddEvenPolicy(), UniformRandomAdversary(seed=9), 8 * n,
            discipline="lifo",
        )
        heights_equal = fifo.max_height == lifo.max_height
        ok &= heights_equal
        rows.append([n, "fifo (delay p95)", round(fifo.p95, 1),
                     fifo.max_height, ""])
        rows.append([n, "lifo (delay p95)", round(lifo.p95, 1),
                     lifo.max_height, ""])

        return self._result(
            preset=preset,
            headers=["n", "variant", "max height / p95", "limit / h", "within"],
            rows=rows,
            passed=ok,
            notes=[
                f"FIFO and LIFO heights identical: {heights_equal} "
                "(the bound is discipline-independent, delays are not)",
            ],
            params={"ns": ns, "slack": self.SLACK},
        )
