"""E12 — §6 open question: delay characteristics of Odd-Even.

The conclusions name delay analysis of Odd-Even "an intriguing
direction for further research".  This experiment provides the
measurement: end-to-end delay distributions (mean/p95/p99/max) for
Odd-Even against the baselines, under benign random traffic and under
the seesaw, with FIFO service.  The structural expectations asserted:
packets are actually delivered, delays are at least the hop distance,
and greedy's delays blow up with its buffers under the seesaw.
"""

from __future__ import annotations

from ..adversaries import SeesawAdversary, UniformRandomAdversary
from ..analysis import measure_delays
from ..io.results import ExperimentResult
from ..policies import (
    DownhillOrFlatPolicy,
    GreedyPolicy,
    OddEvenPolicy,
)
from .base import Experiment

__all__ = ["DelayExperiment"]


class DelayExperiment(Experiment):
    id = "E12"
    title = "Delay characteristics (open question of §6)"
    paper_ref = "§6 Conclusions"
    claim = (
        "Measured here, not claimed by the paper: how the O(log n) buffer "
        "policy trades off end-to-end delay against the baselines."
    )

    def _run(self, preset: str) -> ExperimentResult:
        n = 64 if preset == "quick" else 256
        steps = 12 * n if preset == "quick" else 24 * n

        policies = (OddEvenPolicy, GreedyPolicy, DownhillOrFlatPolicy)
        adversaries = (
            lambda: UniformRandomAdversary(p=0.8, seed=21),
            lambda: SeesawAdversary(),
        )

        rows = []
        results = {}
        for make_adv in adversaries:
            for policy_cls in policies:
                r = measure_delays(n, policy_cls(), make_adv(), steps)
                results[(r.adversary, r.policy)] = r
                rows.append(
                    [r.adversary, r.policy, r.delivered,
                     round(r.mean, 1), round(r.p95, 1), round(r.p99, 1),
                     round(r.max, 1), r.max_height]
                )

        # service-discipline sweep (FIFO vs LIS vs SIS, §1.1 policies):
        # heights are identical, the delay *distribution* is not
        discipline_rows = {}
        for disc in ("fifo", "lis", "sis"):
            r = measure_delays(
                n, OddEvenPolicy(), UniformRandomAdversary(p=0.8, seed=21),
                steps, discipline=disc,
            )
            discipline_rows[disc] = r
            rows.append(
                [f"uniform+{disc}", r.policy, r.delivered,
                 round(r.mean, 1), round(r.p95, 1), round(r.p99, 1),
                 round(r.max, 1), r.max_height]
            )

        checks = []
        ok = True
        for (adv, pol), r in results.items():
            delivered = r.delivered > 0
            ok &= delivered
            checks.append(f"{'OK ' if delivered else 'BAD'} {pol}@{adv} "
                          f"delivered {r.delivered} packets")
        seesaw_name = SeesawAdversary().name
        uni_name = UniformRandomAdversary(p=0.8, seed=21).name
        greedy_blowup = (
            results[(seesaw_name, "greedy")].max
            > results[(uni_name, "greedy")].max
        )
        ok &= greedy_blowup
        checks.append(
            f"{'OK ' if greedy_blowup else 'BAD'} greedy max delay blows up "
            "under the seesaw"
        )
        heights_disc = {r.max_height for r in discipline_rows.values()}
        disc_ok = len(heights_disc) == 1
        ok &= disc_ok
        checks.append(
            f"{'OK ' if disc_ok else 'BAD'} FIFO/LIS/SIS heights identical "
            "(the buffer bounds are discipline-independent)"
        )
        return self._result(
            preset=preset,
            headers=["adversary", "policy", "delivered", "mean", "p95",
                     "p99", "max", "max height"],
            rows=rows,
            passed=ok,
            notes=checks,
            params={"n": n, "steps": steps},
        )
