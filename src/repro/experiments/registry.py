"""Experiment registry: id → experiment class.

The ids match DESIGN.md §4 and EXPERIMENTS.md; the CLI and benchmarks
resolve experiments through :func:`get_experiment`.
"""

from __future__ import annotations

from ..errors import ExperimentError
from .base import Experiment
from .e01_policy_table import PolicyTableExperiment
from .e02_odd_even_upper import OddEvenUpperExperiment
from .e03_lower_bound import LowerBoundExperiment
from .e04_burstiness import BurstinessExperiment
from .e05_downhill_or_flat import DownhillOrFlatExperiment
from .e06_greedy_linear import GreedyLinearExperiment
from .e07_tree_upper import TreeUpperExperiment
from .e08_locality_gap import LocalityGapExperiment
from .e09_timing_robustness import TimingRobustnessExperiment
from .e10_centralized import CentralizedExperiment
from .e11_undirected import UndirectedExperiment
from .e12_delay import DelayExperiment
from .e13_certificate import CertificateExperiment
from .e14_tree_matching import TreeMatchingExperiment
from .e15_ablation import AblationExperiment
from .e16_rate_c import RateCExperiment
from .e17_dag import DagExperiment
from .e18_stability import StabilityExperiment
from .e19_fault_degradation import FaultDegradationExperiment

__all__ = ["EXPERIMENTS", "get_experiment", "all_experiment_ids"]

EXPERIMENTS: dict[str, type[Experiment]] = {
    cls.id: cls
    for cls in (
        PolicyTableExperiment,
        OddEvenUpperExperiment,
        LowerBoundExperiment,
        BurstinessExperiment,
        DownhillOrFlatExperiment,
        GreedyLinearExperiment,
        TreeUpperExperiment,
        LocalityGapExperiment,
        TimingRobustnessExperiment,
        CentralizedExperiment,
        UndirectedExperiment,
        DelayExperiment,
        CertificateExperiment,
        TreeMatchingExperiment,
        AblationExperiment,
        RateCExperiment,
        DagExperiment,
        StabilityExperiment,
        FaultDegradationExperiment,
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Instantiate an experiment by id (case-insensitive)."""
    key = experiment_id.upper()
    try:
        return EXPERIMENTS[key]()
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(sorted(EXPERIMENTS, key=lambda e: int(e[1:])))}"
        ) from None


def all_experiment_ids() -> list[str]:
    """All experiment ids in numeric order."""
    return sorted(EXPERIMENTS, key=lambda e: int(e[1:]))
