"""Balanced matchings on trees (§5, Algorithm 6).

For a fixed round, at most one packet enters each *intersection* (node
of in-degree ≥ 2) because the Tree policy (Algorithm 5) lets only the
highest-priority sibling forward.  The tree therefore decomposes into
*lines* — maximal chains of priority children — each starting at a leaf
and ending either at a *blocked* node (a non-priority sibling) or, for
the unique *drain*, at the sink.

The matching is built per line exactly as on paths (Algorithm 2).  A
non-injected blocked line always balances (equal ups and downs); the
injected line, when it is not the drain, has one excess up node, which
Algorithm 6 resolves with *crossover pairs*: the excess up x_u is paired
with the first down node x_d behind the intersection v where x_u's line
blocks, on the priority line through v; the pairs of that line in front
of x_d are re-paired (switching to up-down intervals), possibly leaving
a new excess up that is resolved the same way — a chain of crossovers
marching towards the drain (paper Figure 3).

Priority lines are reconstructed from the actual sends of the round
(the certifier replays exactly what the policy did); where no packet
entered an intersection, the paper's footnote 3 applies: prefer the
branch holding the injection, then the policy's height-priority winner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .classify import NodeKind
from ..errors import MatchingError
from ..network.topology import Topology
from ..policies.tree import select_priority_children

__all__ = [
    "TreePair",
    "TreeMatching",
    "LineDecomposition",
    "decompose_lines",
    "classify_tree_round",
    "build_tree_matching",
    "verify_tree_matching",
    "tree_path_between",
]


@dataclass(frozen=True)
class TreePair:
    """A matched (down, up) pair of node ids; crossover pairs join
    nodes of different lines and have a *tip* (the junction node where
    the x_d → x_u path turns away from the sink)."""

    down: int
    up: int
    crossover: bool = False
    tip: int | None = None


@dataclass(frozen=True)
class TreeMatching:
    pairs: tuple[TreePair, ...]
    unmatched: int | None
    unmatched_kind: NodeKind | None


@dataclass(frozen=True)
class LineDecomposition:
    """The round's priority-line structure.

    ``lines[i]`` lists node ids from the line's start (a leaf) to its
    end (a blocked node or the sink's priority child); ``line_of[v]``
    maps nodes to line indices; ``drain`` is the index of the line
    reaching the sink.
    """

    lines: tuple[tuple[int, ...], ...]
    line_of: np.ndarray
    drain: int
    priority_child: np.ndarray


def _choose_priority_children(
    topology: Topology,
    decision_heights: np.ndarray,
    sends: np.ndarray | None,
    injection: int | None,
    tie_rule: str = "min_id",
) -> np.ndarray:
    """Priority child per node: actual sender > injection branch >
    policy winner > smallest id (footnote 3)."""
    n = topology.n
    winner = select_priority_children(decision_heights, topology, tie_rule)
    choice = np.full(n, -1, dtype=np.int64)

    # which branch holds the injection?
    inj_path: set[int] = set()
    if injection is not None:
        u = injection
        while u != -1:
            inj_path.add(int(u))
            u = int(topology.succ[u])

    for v in range(n):
        kids = topology.children[v]
        if not kids:
            continue
        if sends is not None:
            senders = [k for k in kids if sends[k] > 0]
            if len(senders) > 1:
                raise MatchingError(
                    f"intersection {v} received {len(senders)} packets; "
                    "Algorithm 5 admits at most one"
                )
            if senders:
                choice[v] = senders[0]
                continue
        inj_kids = [k for k in kids if k in inj_path]
        if inj_kids:
            choice[v] = inj_kids[0]
            continue
        if winner[v] >= 0:
            choice[v] = winner[v]
            continue
        choice[v] = min(kids)
    return choice


def decompose_lines(
    topology: Topology,
    decision_heights: np.ndarray,
    sends: np.ndarray | None = None,
    injection: int | None = None,
    tie_rule: str = "min_id",
) -> LineDecomposition:
    """Split the tree into priority lines for one round."""
    priority = _choose_priority_children(
        topology, decision_heights, sends, injection, tie_rule
    )
    n = topology.n
    line_of = np.full(n, -1, dtype=np.int64)
    lines: list[tuple[int, ...]] = []
    drain = -1
    for leaf in topology.leaves:
        if leaf == topology.sink:
            continue
        nodes = [leaf]
        u = leaf
        while True:
            nxt = int(topology.succ[u])
            if nxt == -1 or priority[nxt] != u:
                break
            if nxt == topology.sink:
                break
            nodes.append(nxt)
            u = nxt
        idx = len(lines)
        lines.append(tuple(nodes))
        for w in nodes:
            line_of[w] = idx
        end_succ = int(topology.succ[nodes[-1]])
        if end_succ == topology.sink and priority[topology.sink] == nodes[-1]:
            drain = idx
    if drain < 0 and lines:
        raise MatchingError("no drain line reaches the sink")
    return LineDecomposition(
        lines=tuple(lines),
        line_of=line_of,
        drain=drain,
        priority_child=priority,
    )


def classify_tree_round(
    before: np.ndarray, after: np.ndarray, topology: Topology
) -> list[NodeKind]:
    """Per-node up/down/steady/2up labels (sink forced steady)."""
    kinds: list[NodeKind] = []
    up2 = 0
    for v in range(topology.n):
        d = int(after[v]) - int(before[v])
        if v == topology.sink or d == 0:
            kinds.append(NodeKind.STEADY)
        elif d == -1:
            kinds.append(NodeKind.DOWN)
        elif d == 1:
            kinds.append(NodeKind.UP)
        elif d == 2:
            kinds.append(NodeKind.UP2)
            up2 += 1
        else:
            raise MatchingError(
                f"node {v} changed height by {d}; impossible at c = 1"
            )
    if up2 > 1:
        raise MatchingError("more than one 2up node in a round")
    return kinds


def _pair_line(
    seq: list[int], kinds: list[NodeKind]
) -> tuple[list[TreePair], int | None]:
    """Algorithm 2 on one line's non-steady sequence (2up twice)."""
    pairs: list[TreePair] = []
    i = 0
    while i + 1 < len(seq):
        a, b = seq[i], seq[i + 1]
        if a == b:
            raise MatchingError(f"2up node {a} would pair with itself")
        a_down = kinds[a] is NodeKind.DOWN
        b_down = kinds[b] is NodeKind.DOWN
        if a_down == b_down:
            raise MatchingError(
                f"nodes {a} and {b} cannot form a down/up pair"
            )
        pairs.append(
            TreePair(down=a if a_down else b, up=b if a_down else a)
        )
        i += 2
    return pairs, (seq[i] if i < len(seq) else None)


def build_tree_matching(
    topology: Topology,
    before: np.ndarray,
    after: np.ndarray,
    decomposition: LineDecomposition,
    injection: int | None,
) -> TreeMatching:
    """Algorithm 6: per-line matchings plus crossover resolution."""
    kinds = classify_tree_round(before, after, topology)

    # non-steady sequences per line, in line order (2up twice)
    seqs: list[list[int]] = []
    for line in decomposition.lines:
        s: list[int] = []
        for v in line:
            if kinds[v] is NodeKind.DOWN or kinds[v] is NodeKind.UP:
                s.append(v)
            elif kinds[v] is NodeKind.UP2:
                s.extend((v, v))
        seqs.append(s)

    all_pairs: list[TreePair] = []
    unmatched_global: int | None = None
    pending_up: int | None = None

    for idx, s in enumerate(seqs):
        pairs, leftover = _pair_line(s, kinds)
        all_pairs.extend(pairs)
        if leftover is None:
            continue
        if kinds[leftover] is NodeKind.DOWN or idx == decomposition.drain:
            # rightmost down node or the drain's leading-zero: the path
            # machinery handles these without a pair
            if unmatched_global is not None:
                raise MatchingError(
                    "two globally unmatched nodes "
                    f"({unmatched_global} and {leftover})"
                )
            unmatched_global = leftover
        else:
            if pending_up is not None:
                raise MatchingError("two excess up nodes in one round")
            pending_up = leftover

    # ---- crossover resolution (the while loop of Algorithm 6) -------
    visited_lines: set[int] = set()
    while pending_up is not None:
        x_u = int(pending_up)
        pending_up = None
        line_idx = int(decomposition.line_of[x_u])
        if line_idx in visited_lines:
            raise MatchingError(
                f"crossover chain revisited line {line_idx}"
            )
        visited_lines.add(line_idx)
        line = decomposition.lines[line_idx]
        end = line[-1]
        v = int(topology.succ[end])  # the blocking intersection (or sink)
        if v == -1:
            raise MatchingError(
                f"excess up node {x_u} sits on the drain — cannot cross over"
            )
        if v == topology.sink:
            target_idx = decomposition.drain
            v_cut = None  # the whole drain is "behind the sink"
        else:
            target_idx = int(decomposition.line_of[v])
            v_cut = v
        target_seq = seqs[target_idx]
        target_line = decomposition.lines[target_idx]
        pos_in_line = {node: i for i, node in enumerate(target_line)}
        cut = pos_in_line[v_cut] if v_cut is not None else len(target_line)

        # first down node behind v on the priority line
        x_d = None
        k = None
        for i in range(len(target_seq) - 1, -1, -1):
            node = target_seq[i]
            if pos_in_line[node] < cut and kinds[node] is NodeKind.DOWN:
                x_d = node
                k = i
                break
        if x_d is None:
            raise MatchingError(
                f"no down node behind intersection {v} to cross over with "
                f"(excess up {x_u})"
            )

        # rebuild the target line's pairs: prefix unchanged, x_d leaves
        # for the crossover, suffix re-paired consecutively.  Any old
        # leftover of the target line sat at the end of its sequence
        # (at or after x_d) and is superseded by the re-pairing.
        if (
            unmatched_global is not None
            and decomposition.line_of[unmatched_global] == target_idx
        ):
            unmatched_global = None
        prefix_pairs, pre_left = _pair_line(target_seq[:k], kinds)
        suffix_pairs, leftover = _pair_line(target_seq[k + 1 :], kinds)
        if pre_left is not None:
            raise MatchingError(
                f"crossover target {x_d} is not at an even index of its "
                "line's non-steady sequence"
            )
        # remove this line's old pairs and install the new arrangement
        all_pairs = [
            p
            for p in all_pairs
            if decomposition.line_of[p.down] != target_idx
            or decomposition.line_of[p.up] != target_idx
            or p.crossover
        ]
        all_pairs.extend(prefix_pairs)
        all_pairs.extend(suffix_pairs)
        all_pairs.append(
            TreePair(down=x_d, up=x_u, crossover=True, tip=v)
        )

        if leftover is not None:
            if kinds[leftover] is NodeKind.DOWN or target_idx == decomposition.drain:
                if unmatched_global is not None:
                    raise MatchingError(
                        "two globally unmatched nodes after crossover"
                    )
                unmatched_global = leftover
            else:
                pending_up = leftover

    return TreeMatching(
        pairs=tuple(all_pairs),
        unmatched=unmatched_global,
        unmatched_kind=(
            kinds[unmatched_global] if unmatched_global is not None else None
        ),
    )


def tree_path_between(topology: Topology, a: int, b: int) -> tuple[list[int], int | None]:
    """Nodes strictly between a and b on the tree path, and the tip.

    The *tip* is the node where the a→b path switches from moving
    towards the sink to moving away (the junction); per §5 it does not
    count as "between".  Returns (between_nodes_excluding_tip, tip) —
    tip is None when one endpoint is an ancestor of the other.
    """
    pa = topology.path_to_sink(a)
    pb = topology.path_to_sink(b)
    sa, sb = set(pa), set(pb)
    tip = None
    for u in pa:
        if u in sb:
            tip = u
            break
    if tip is None:  # pragma: no cover - every pair meets at the sink
        raise MatchingError(f"nodes {a} and {b} share no path to the sink")
    ia = pa.index(tip)
    ib = pb.index(tip)
    between = pa[1:ia] + pb[1:ib]
    if tip in (a, b):
        return between, None
    return between, tip


def verify_tree_matching(
    matching: TreeMatching,
    topology: Topology,
    before: np.ndarray,
    kinds: list[NodeKind],
) -> None:
    """Check Lemma 5.3 for every pair of a tree matching.

    ``h(x_u) ≤ h(x_d)`` and every node *between* them (tip excluded) is
    at least ``h(x_u)`` tall, all in configuration C.
    """
    for pair in matching.pairs:
        h_u = int(before[pair.up])
        h_d = int(before[pair.down])
        if h_u > h_d:
            raise MatchingError(
                f"Lemma 5.3: h(up={pair.up})={h_u} > h(down={pair.down})={h_d}"
            )
        between, tip = tree_path_between(topology, pair.down, pair.up)
        for z in between:
            if before[z] < h_u:
                raise MatchingError(
                    f"Lemma 5.3: node {z} (h={before[z]}) between pair "
                    f"({pair.down},{pair.up}) is below h_u={h_u}"
                )
        if pair.crossover and tip is None:
            raise MatchingError(
                f"crossover pair ({pair.down},{pair.up}) has no tip"
            )
