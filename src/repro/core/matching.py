"""Balanced matchings on paths (Definition 4.2, Algorithm 2).

A balanced matching pairs every *up* node with a neighbouring *down*
node (and vice versa), except possibly for the leading-zero node and
the rightmost down node; the 2up node is paired with both of its
neighbouring down nodes.  The matching is the charging argument's
skeleton: every height increase is paid for by a height decrease at a
node that — by Lemma 4.4 — was at least as tall.

Algorithm 2 is literally "pair consecutive non-steady nodes from the
left" (the 2up node counted twice); Claim 1 shows at most one node
stays unmatched and identifies it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .classify import NodeKind, RoundClassification
from ..errors import MatchingError

__all__ = ["PairKind", "MatchingPair", "BalancedMatching", "build_matching",
           "verify_matching"]


class PairKind(Enum):
    DOWN_UP = "down-up"   # down node behind (left of) the up node
    UP_DOWN = "up-down"   # up node behind (left of) the down node


@dataclass(frozen=True)
class MatchingPair:
    """One matched (down, up) pair, stored by path position."""

    down: int
    up: int

    @property
    def kind(self) -> PairKind:
        return PairKind.DOWN_UP if self.down < self.up else PairKind.UP_DOWN

    @property
    def left(self) -> int:
        return min(self.down, self.up)

    @property
    def right(self) -> int:
        return max(self.down, self.up)


@dataclass(frozen=True)
class BalancedMatching:
    """The full matching for one round.

    ``unmatched`` is the single leftover non-steady position (or
    ``None``); per Claim 1 it is the rightmost down node or the
    leading-zero node.
    """

    pairs: tuple[MatchingPair, ...]
    unmatched: int | None
    unmatched_kind: NodeKind | None


def build_matching(cls: RoundClassification) -> BalancedMatching:
    """Algorithm 2: pair consecutive non-steady nodes left-to-right.

    Raises
    ------
    MatchingError
        If a would-be pair consists of two downs or two ups in a way
        Claim 1 excludes (three consecutive same-kind nodes), which
        would mean the run being certified does not follow the c = 1
        Odd-Even dynamics.
    """
    x = list(cls.non_steady)
    pairs: list[MatchingPair] = []
    i = 0
    while i + 1 < len(x):
        a, b = x[i], x[i + 1]
        ka = cls.kinds[a]
        kb = cls.kinds[b]
        if a == b:
            # the two copies of the 2up node may never be paired with
            # each other; this can only happen if alternation broke.
            raise MatchingError(
                f"2up node at position {a} would pair with itself"
            )
        a_down = ka is NodeKind.DOWN
        b_down = kb is NodeKind.DOWN
        if a_down and not b_down:
            pairs.append(MatchingPair(down=a, up=b))
        elif b_down and not a_down:
            pairs.append(MatchingPair(down=b, up=a))
        else:
            raise MatchingError(
                f"positions {a} ({ka.name}) and {b} ({kb.name}) cannot "
                "form a down/up pair — alternation violated"
            )
        i += 2

    unmatched = x[i] if i < len(x) else None
    unmatched_kind = cls.kinds[unmatched] if unmatched is not None else None
    return BalancedMatching(
        pairs=tuple(pairs),
        unmatched=unmatched,
        unmatched_kind=unmatched_kind,
    )


def verify_matching(
    matching: BalancedMatching,
    cls: RoundClassification,
    before: np.ndarray,
) -> None:
    """Check Definition 4.2, Claim 1 and Lemma 4.4 for a round.

    * every pair is one down + one up with only steady nodes between
      them (neighbourhood condition);
    * the unmatched node, if any, is the rightmost down node or the
      leading-zero;
    * Lemma 4.4: ``h(x_u) ≤ h(x_d)`` in C, the heights between a
      down-up pair are non-increasing towards the sink and between an
      up-down pair non-decreasing.

    Raises :class:`MatchingError` on the first violation.
    """
    before = np.asarray(before, dtype=np.int64)
    kinds = cls.kinds

    matched_positions: list[int] = []
    for pair in matching.pairs:
        matched_positions.extend((pair.down, pair.up))
        # only steady nodes strictly between the pair (the 2up node is
        # its own neighbour for its two pairs, so allow the shared
        # endpoint to be non-steady)
        for z in range(pair.left + 1, pair.right):
            if kinds[z] is not NodeKind.STEADY and z not in (
                pair.down,
                pair.up,
            ):
                raise MatchingError(
                    f"non-steady node at {z} strictly inside pair "
                    f"({pair.down},{pair.up})"
                )
        # Lemma 4.4 is stated on the heights of C; the intermediate
        # heights used while processing a down-2up-down triple are
        # checked inside process_pair, which also fixes the processing
        # order (see process_round).
        eff = before
        h_d, h_u = int(eff[pair.down]), int(eff[pair.up])
        if h_u > h_d:
            raise MatchingError(
                f"Lemma 4.4 violated: h(up={pair.up})={h_u} > "
                f"h(down={pair.down})={h_d}"
            )
        # Lemma 4.4: heights run monotonically from x_d to x_u; the
        # ranges include the final comparison against the interval's
        # right endpoint (z ranges over all nodes except the right end).
        if pair.kind is PairKind.DOWN_UP:
            for z in range(pair.down, pair.up):
                if eff[z] < eff[z + 1]:
                    raise MatchingError(
                        f"down-up interval ({pair.down},{pair.up}) not "
                        f"non-increasing at {z}"
                    )
        else:
            for z in range(pair.up, pair.down):
                if eff[z] > eff[z + 1]:
                    raise MatchingError(
                        f"up-down interval ({pair.up},{pair.down}) not "
                        f"non-decreasing at {z}"
                    )

    # each non-steady position used the right number of times
    from collections import Counter

    used = Counter(matched_positions)
    if matching.unmatched is not None:
        used[matching.unmatched] += 1
    expected = Counter(cls.non_steady)
    if used != expected:
        raise MatchingError(
            f"matching does not cover non-steady nodes exactly: "
            f"{used} != {expected}"
        )

    if matching.unmatched is not None:
        k = kinds[matching.unmatched]
        if k is NodeKind.DOWN:
            later_downs = [
                p
                for p in cls.non_steady
                if p > matching.unmatched and kinds[p] is NodeKind.DOWN
            ]
            if later_downs:
                raise MatchingError(
                    "unmatched down node is not the rightmost down node"
                )
        elif k in (NodeKind.UP, NodeKind.UP2):
            if matching.unmatched != cls.leading_zero:
                raise MatchingError(
                    "unmatched up node is not the leading-zero (Claim 1)"
                )
        else:  # pragma: no cover - impossible: steady nodes not in X
            raise MatchingError("unmatched node is steady")
