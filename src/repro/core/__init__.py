"""The paper's core contribution: algorithms, bounds, proof machinery.

* :mod:`repro.core.bounds` — every theorem's bound as a function.
* :mod:`repro.core.classify` / :mod:`repro.core.matching` — round
  classification and balanced matchings (Algorithm 2).
* :mod:`repro.core.attachment` / :mod:`repro.core.maintenance` —
  attachment schemes and their maintenance (Algorithms 3–4).
* :mod:`repro.core.certificate` — the runtime certifier for the
  log₂ n + 3 bound (Theorem 4.13).
* :mod:`repro.core.tree_matching` / :mod:`repro.core.tree_certificate`
  — the §5 generalisation to trees (Algorithm 6, Theorem 5.11).

The policies themselves (Algorithms 1 and 5) live in
:mod:`repro.policies` so they can be benchmarked uniformly against the
baselines.
"""

from .attachment import AttachmentScheme, Slot
from .bounds import (
    centralized_upper_bound,
    corollary_3_2_lower_bound,
    downhill_or_flat_reference,
    fie_growth_rate,
    greedy_reference,
    odd_even_upper_bound,
    path_height_bound_from_residues,
    path_residue_count,
    theorem_3_1_lower_bound,
    tree_residue_count,
    tree_upper_bound,
)
from .certificate import CertificateReport, OddEvenCertifier, certify_path_run
from .classify import NodeKind, RoundClassification, classify_round
from .maintenance import process_pair, process_round
from .matching import (
    BalancedMatching,
    MatchingPair,
    PairKind,
    build_matching,
    verify_matching,
)
from .tree_certificate import (
    TreeCertificateReport,
    TreeCertifier,
    certify_tree_run,
    validate_tree_rules,
)
from .tree_matching import (
    LineDecomposition,
    TreeMatching,
    TreePair,
    build_tree_matching,
    classify_tree_round,
    decompose_lines,
    tree_path_between,
    verify_tree_matching,
)

__all__ = [
    "AttachmentScheme",
    "Slot",
    "centralized_upper_bound",
    "corollary_3_2_lower_bound",
    "downhill_or_flat_reference",
    "fie_growth_rate",
    "greedy_reference",
    "odd_even_upper_bound",
    "path_height_bound_from_residues",
    "path_residue_count",
    "theorem_3_1_lower_bound",
    "tree_residue_count",
    "tree_upper_bound",
    "CertificateReport",
    "OddEvenCertifier",
    "certify_path_run",
    "NodeKind",
    "RoundClassification",
    "classify_round",
    "process_pair",
    "process_round",
    "BalancedMatching",
    "MatchingPair",
    "PairKind",
    "build_matching",
    "verify_matching",
    "TreeCertificateReport",
    "TreeCertifier",
    "certify_tree_run",
    "validate_tree_rules",
    "LineDecomposition",
    "TreeMatching",
    "TreePair",
    "build_tree_matching",
    "classify_tree_round",
    "decompose_lines",
    "tree_path_between",
    "verify_tree_matching",
]
