"""Round classification for the §4 proof machinery.

Given the configurations ``C`` (start of a round) and ``C'`` (start of
the next round) the paper classifies every node:

* **down** — its height decreased (always by exactly 1, since c = 1);
* **up** — its height increased by 1;
* **2up** — increased by 2 (received from its predecessor *and* from
  the adversary while not sending; at most one per round);
* **steady** — unchanged;
* the **leading-zero** is the special up node that went 0 → 1 while
  every node in front of it has height 0 — the head of a fresh wave
  rolling towards the sink.

Everything here works in *position space* along a directed path:
position 0 is the far end, position ``N-1`` is the last buffering node
(the sink, which never buffers, is excluded).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..errors import CertificationError

__all__ = ["NodeKind", "RoundClassification", "classify_round"]


class NodeKind(Enum):
    STEADY = 0
    DOWN = 1
    UP = 2
    UP2 = 3


@dataclass(frozen=True)
class RoundClassification:
    """Per-position labels for one round plus derived artefacts.

    Attributes
    ----------
    kinds:
        ``kinds[p]`` is the :class:`NodeKind` of position ``p``.
    non_steady:
        Positions with a height change, ascending; the 2up position (if
        any) appears **twice**, exactly as Algorithm 2 requires.
    leading_zero:
        Position of the leading-zero node, or ``None``.
    """

    kinds: tuple[NodeKind, ...]
    non_steady: tuple[int, ...]
    leading_zero: int | None

    @property
    def up2_position(self) -> int | None:
        for p, k in enumerate(self.kinds):
            if k is NodeKind.UP2:
                return p
        return None


def classify_round(
    before: np.ndarray, after: np.ndarray
) -> RoundClassification:
    """Classify a round from its two configurations (sink excluded).

    Raises
    ------
    CertificationError
        If any height moved by more than the c = 1 dynamics allow
        (|Δ| > 2, Δ = −2, or more than one 2up node).
    """
    before = np.asarray(before, dtype=np.int64)
    after = np.asarray(after, dtype=np.int64)
    if before.shape != after.shape or before.ndim != 1:
        raise CertificationError("configuration arrays must match in shape")
    diff = after - before

    kinds: list[NodeKind] = []
    non_steady: list[int] = []
    up2_seen = False
    for p, d in enumerate(diff):
        if d == 0:
            kinds.append(NodeKind.STEADY)
        elif d == -1:
            kinds.append(NodeKind.DOWN)
            non_steady.append(p)
        elif d == 1:
            kinds.append(NodeKind.UP)
            non_steady.append(p)
        elif d == 2:
            if up2_seen:
                raise CertificationError(
                    "two 2up nodes in one round — impossible at rate c = 1"
                )
            up2_seen = True
            kinds.append(NodeKind.UP2)
            non_steady.append(p)
            non_steady.append(p)
        else:
            raise CertificationError(
                f"position {p} changed height by {d}; c = 1 allows only "
                "-1, 0, +1, +2"
            )

    leading_zero: int | None = None
    # The leading-zero went up from 0 with every position in front of it
    # empty after the round; by definition it is the rightmost up node.
    # A 2up that started from height 0 next to the sink (received +
    # injected in one round) plays the leading-zero role for its second,
    # otherwise-unmatched copy: its intermediate height is 1, so the
    # extra increment needs no slots, exactly like a 0 -> 1 step.
    for p in range(len(diff) - 1, -1, -1):
        if kinds[p] in (NodeKind.UP, NodeKind.UP2):
            if before[p] == 0 and (after[p + 1 :] == 0).all():
                leading_zero = p
            break

    return RoundClassification(
        kinds=tuple(kinds),
        non_steady=tuple(non_steady),
        leading_zero=leading_zero,
    )
