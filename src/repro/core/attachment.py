"""Attachment schemes (Definitions 4.5 and 4.8).

The exponential-cost argument behind Theorem 4.13: every packet
``x[i]`` of a node at height ≥ 3 owns *slots* ``x[i, 1..i-2]``, and a
(valid, full) attachment scheme assigns to every slot ``x[i, j]`` a
distinct *residue* node of height exactly ``j``.  Counting residues
recursively (Lemma 4.6) shows a height-m node pins down ``2^(m-2) − 1``
distinct nodes, so m ≤ log₂ n + 3 (Lemma 4.7).

Rules (Definition 4.5 — structure, Definition 4.8 — validity):

1. a slot ``x[i, j]`` holds a node of height exactly ``j``;
2. slots and residues are matched one-to-one (no sharing);
3. an even-height residue's guardian is *in front of* it (sink side);
4. an odd-height residue's guardian is *behind* it;
5. every node strictly between a residue and its guardian is at least
   as tall as the residue.

*Fullness* (implicit in Lemma 4.6's counting, maintained by
Algorithm 4): **every** existing slot is attached.

Positions follow :mod:`repro.core.classify`: 0 = far end, larger =
closer to the sink; the sink itself has no position.

The tree generalisation (§5) reuses this container with
``even_only=True`` (only even-height residues are tracked — the paper
"limits Rule 2 to residues of even value") and replaces Rules 3–5 with
Rules 6–7, which are checked by the tree certifier, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import AttachmentError

__all__ = ["Slot", "AttachmentScheme"]


@dataclass(frozen=True, slots=True, order=True)
class Slot:
    """Slot ``x[i, j]``: the j-th slot of the i-th packet of node x."""

    node: int
    packet: int  # i, 3 <= i <= h(node)
    level: int   # j, 1 <= j <= i - 2

    def __post_init__(self) -> None:
        if self.packet < 3:
            raise AttachmentError(
                f"packet {self.packet} has no slots (needs i >= 3)"
            )
        if not 1 <= self.level <= self.packet - 2:
            raise AttachmentError(
                f"slot level {self.level} out of range for packet {self.packet}"
            )


class AttachmentScheme:
    """A mutable one-to-one map slots ↔ residue nodes.

    The container enforces Rule 2 (exclusivity) on every mutation; the
    configuration-dependent rules are checked by :meth:`validate`.
    """

    def __init__(self, even_only: bool = False) -> None:
        self.even_only = even_only
        self._by_slot: dict[Slot, int] = {}
        self._by_node: dict[int, Slot] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def attach(self, slot: Slot, node: int) -> None:
        """Attach ``node`` as the residue of ``slot`` (Rule 2 enforced)."""
        if node == slot.node:
            raise AttachmentError(f"node {node} cannot attach to itself")
        if slot in self._by_slot:
            raise AttachmentError(f"slot {slot} already attached")
        if node in self._by_node:
            raise AttachmentError(
                f"node {node} is already a residue of {self._by_node[node]}"
            )
        if self.even_only and slot.level % 2 != 0:
            raise AttachmentError(
                f"even-only scheme cannot attach at odd level {slot.level}"
            )
        self._by_slot[slot] = node
        self._by_node[node] = slot

    def detach_slot(self, slot: Slot) -> int:
        """Remove the attachment at ``slot``; returns the freed node."""
        try:
            node = self._by_slot.pop(slot)
        except KeyError:
            raise AttachmentError(f"slot {slot} is not attached") from None
        del self._by_node[node]
        return node

    def detach_node(self, node: int) -> Slot:
        """Remove ``node``'s residue attachment; returns the freed slot."""
        try:
            slot = self._by_node.pop(node)
        except KeyError:
            raise AttachmentError(f"node {node} is not a residue") from None
        del self._by_slot[slot]
        return slot

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def residue_at(self, slot: Slot) -> int | None:
        """The node attached to ``slot`` (the paper's ``att_A(x[i,j])``)."""
        return self._by_slot.get(slot)

    def guardian_of(self, node: int) -> Slot | None:
        """The slot guarding ``node``, or None if it is not a residue."""
        return self._by_node.get(node)

    def is_residue(self, node: int) -> bool:
        return node in self._by_node

    def residues(self) -> tuple[int, ...]:
        return tuple(self._by_node)

    def slots_of(self, node: int) -> tuple[Slot, ...]:
        """All currently attached slots owned by ``node``."""
        return tuple(s for s in self._by_slot if s.node == node)

    def __len__(self) -> int:
        return len(self._by_slot)

    def __iter__(self) -> Iterator[tuple[Slot, int]]:
        return iter(self._by_slot.items())

    def copy(self) -> "AttachmentScheme":
        out = AttachmentScheme(self.even_only)
        out._by_slot = dict(self._by_slot)
        out._by_node = dict(self._by_node)
        return out

    # ------------------------------------------------------------------
    # Expected slots for a configuration
    # ------------------------------------------------------------------
    def expected_slots(self, height: int) -> list[tuple[int, int]]:
        """(packet, level) pairs a node of ``height`` must have filled."""
        out = []
        for i in range(3, height + 1):
            for j in range(1, i - 1):
                if self.even_only and j % 2 != 0:
                    continue
                out.append((i, j))
        return out

    # ------------------------------------------------------------------
    # Validation (Rules 1-5 + fullness) for path configurations
    # ------------------------------------------------------------------
    def validate(
        self,
        heights: np.ndarray,
        *,
        check_direction: bool = True,
        check_between: bool = True,
    ) -> None:
        """Check the scheme against a path configuration.

        ``heights`` are indexed by position; position order is distance
        order (larger = closer to the sink).  Raises
        :class:`AttachmentError` on the first violated rule.
        """
        heights = np.asarray(heights, dtype=np.int64)
        n = heights.size

        for slot, y in self._by_slot.items():
            x = slot.node
            if not (0 <= x < n and 0 <= y < n):
                raise AttachmentError(f"{slot}->{y}: position out of range")
            if slot.packet > heights[x]:
                raise AttachmentError(
                    f"{slot}: node {x} has height {heights[x]} < packet "
                    f"{slot.packet} (stale slot)"
                )
            if heights[y] != slot.level:  # Rule 1
                raise AttachmentError(
                    f"Rule 1: residue {y} has height {heights[y]} != "
                    f"slot level {slot.level}"
                )
            if check_direction:
                if slot.level % 2 == 0:  # Rule 3: guardian in front
                    if not x > y:
                        raise AttachmentError(
                            f"Rule 3: even residue {y} guarded from behind by {x}"
                        )
                else:  # Rule 4: guardian behind
                    if not x < y:
                        raise AttachmentError(
                            f"Rule 4: odd residue {y} guarded from front by {x}"
                        )
            if check_between:  # Rule 5
                lo, hi = (x, y) if x < y else (y, x)
                for z in range(lo + 1, hi):
                    if heights[z] < slot.level:
                        raise AttachmentError(
                            f"Rule 5: node {z} (h={heights[z]}) between "
                            f"residue {y} and guardian {x} is below "
                            f"level {slot.level}"
                        )

        # fullness: every existing slot of every node is attached
        for x in range(n):
            for i, j in self.expected_slots(int(heights[x])):
                if Slot(x, i, j) not in self._by_slot:
                    raise AttachmentError(
                        f"fullness: slot {x}[{i},{j}] is empty "
                        f"(h({x}) = {heights[x]})"
                    )
