"""Runtime certification of the Odd-Even height bound (Theorem 4.13).

The :class:`OddEvenCertifier` replays a path execution round by round,
maintaining the balanced matching + attachment scheme exactly as the
proof prescribes (Algorithms 2–4).  If every round processes cleanly,
Lemmas 4.6/4.7 *mechanically* certify that no buffer can have exceeded
``log₂ n + 3`` — the certificate is the scheme itself, not a mere
measurement.  Any gap between the implementation and the paper's
invariants raises :class:`CertificationError` with full round context.

This doubles as the strongest test of the reproduction: hypothesis
drives random adversaries through certified runs
(``tests/property/test_certifier_property.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .attachment import AttachmentScheme
from .bounds import odd_even_upper_bound, path_height_bound_from_residues
from .classify import RoundClassification
from .maintenance import process_round
from .matching import BalancedMatching
from ..errors import CertificationError

__all__ = [
    "CertificateReport",
    "OddEvenCertifier",
    "CertifiedPathEngine",
    "certify_path_run",
]


@dataclass
class CertificateReport:
    """Outcome of a certified run."""

    positions: int
    rounds: int = 0
    max_height: int = 0
    max_residues: int = 0
    max_attachments: int = 0
    bound: int = 0
    theorem_bound: float = 0.0

    @property
    def certified(self) -> bool:
        """True iff the mechanical bound was never exceeded."""
        return self.max_height <= self.bound


class OddEvenCertifier:
    """Maintains the proof object alongside an Odd-Even path run."""

    def __init__(self, positions: int, *, validate_every: int = 1) -> None:
        """``positions`` = number of buffering nodes (sink excluded).

        ``validate_every`` controls how often the full O(n·h) rule
        validation runs (1 = every round; larger strides only validate
        periodically, while the matching checks still run every round).
        """
        if positions < 1:
            raise CertificationError("need at least one buffering position")
        self.positions = positions
        self.validate_every = max(1, int(validate_every))
        self.scheme = AttachmentScheme()
        self.heights = np.zeros(positions, dtype=np.int64)
        self.report = CertificateReport(
            positions=positions,
            bound=path_height_bound_from_residues(positions),
            theorem_bound=odd_even_upper_bound(positions),
        )
        self.last_classification: RoundClassification | None = None
        self.last_matching: BalancedMatching | None = None

    def observe(self, after: np.ndarray) -> None:
        """Advance the certificate by one round ending in ``after``.

        ``after`` must exclude the sink and follow from the previous
        configuration under c = 1 Odd-Even dynamics.
        """
        after = np.asarray(after, dtype=np.int64)
        if after.shape != (self.positions,):
            raise CertificationError(
                f"expected {self.positions} positions, got {after.shape}"
            )
        validate = self.report.rounds % self.validate_every == 0
        cls, matching = process_round(
            self.scheme, self.heights, after, validate=validate
        )
        self.heights = after.copy()
        self.last_classification = cls
        self.last_matching = matching

        r = self.report
        r.rounds += 1
        r.max_height = max(r.max_height, int(after.max(initial=0)))
        r.max_residues = max(r.max_residues, len(self.scheme.residues()))
        r.max_attachments = max(r.max_attachments, len(self.scheme))
        if r.max_height > r.bound:
            raise CertificationError(
                f"height {r.max_height} exceeds the mechanical bound "
                f"{r.bound} — the certificate is broken"
            )


class CertifiedPathEngine:
    """A :class:`~repro.network.engine_fast.PathEngine` with the
    certifier attached to every step.

    Exposes the engine interface the orchestrating adversaries use
    (``step`` / ``checkpoint`` / ``restore`` / ``heights`` /
    ``metrics``), so the Theorem 3.1 attack can be driven through a
    *certified* execution: the proof object follows the kept scenario
    across rollbacks.
    """

    def __init__(self, engine, certifier: OddEvenCertifier) -> None:
        self.engine = engine
        self.certifier = certifier

    def __getattr__(self, item):
        return getattr(self.engine, item)

    def step(self, injections=None) -> None:
        self.engine.step(injections)
        self.certifier.observe(self.engine.heights[:-1])

    def run(self, steps: int) -> "CertifiedPathEngine":
        for _ in range(steps):
            self.step()
        return self

    def checkpoint(self):
        return (
            self.engine.checkpoint(),
            self.certifier.scheme.copy(),
            self.certifier.heights.copy(),
            self.certifier.report.rounds,
        )

    def restore(self, cp) -> None:
        inner_cp, scheme, heights, rounds = cp
        self.engine.restore(inner_cp)
        self.certifier.scheme = scheme.copy()
        self.certifier.heights = heights.copy()
        self.certifier.report.rounds = rounds


def certify_path_run(
    n: int,
    adversary,
    steps: int,
    *,
    decision_timing: str = "pre_injection",
    validate_every: int = 1,
) -> CertificateReport:
    """Run Odd-Even on a directed path under ``adversary`` for ``steps``
    rounds with the certifier attached; returns the certificate report.

    ``n`` is the total node count (including the sink), matching
    :class:`repro.network.engine_fast.PathEngine`.
    """
    from ..network.engine_fast import PathEngine
    from ..policies.odd_even import OddEvenPolicy

    engine = PathEngine(
        n,
        OddEvenPolicy(),
        adversary,
        decision_timing=decision_timing,
    )
    cert = OddEvenCertifier(n - 1, validate_every=validate_every)
    for _ in range(steps):
        engine.step()
        cert.observe(engine.heights[:-1])
    return cert.report
