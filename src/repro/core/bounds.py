"""Closed-form bounds from the paper, as executable functions.

Every theorem's bound is available here so that tests, benchmarks and
reports compare measured maxima against the exact expressions rather
than re-deriving them ad hoc.
"""

from __future__ import annotations

import math
from functools import lru_cache

__all__ = [
    "theorem_3_1_lower_bound",
    "attack_schedule_length",
    "corollary_3_2_lower_bound",
    "odd_even_upper_bound",
    "path_residue_count",
    "path_height_bound_from_residues",
    "tree_residue_count",
    "tree_upper_bound",
    "downhill_or_flat_reference",
    "greedy_reference",
    "centralized_upper_bound",
    "fie_growth_rate",
]


def theorem_3_1_lower_bound(n: int, c: int = 1, ell: int = 1) -> float:
    """Theorem 3.1: forced buffer size on a directed path of n nodes.

    ``c(1 + (log n − 2 log ℓ − 1) / 2ℓ)`` — the precise constant from
    the proof (the number of halving stages is ⌊log(n/2ℓ²)⌋ and each
    stage raises the density by c/2ℓ above the initial c).
    """
    if n < 2 or c < 1 or ell < 1:
        raise ValueError("need n >= 2, c >= 1, ell >= 1")
    stages = math.log2(n) - 2 * math.log2(ell) - 1
    return c * (1.0 + max(stages, 0.0) / (2.0 * ell))


def attack_schedule_length(
    n: int, ell: int = 1, burst: bool = False
) -> int:
    """Steps the Theorem 3.1 attack spends on its *kept* execution.

    Stage 0 injects for n₀ steps (n₀ the largest ℓ·2^i ≤ n − 1); each
    halving stage i runs K_i/2ℓ steps with K_i = n₀/2^(i−1)... summing
    the geometric series the whole attack costs
    ``n₀ + (n₀ − ℓ·2)/ℓ ... `` — computed exactly below by replaying
    the block arithmetic.  The discarded scenarios double the simulated
    work but not the schedule length.  Useful for budgeting sweeps and
    asserted against the driver's actual ``step_index`` in tests.
    """
    if n < 2 or ell < 1:
        raise ValueError("need n >= 2 and ell >= 1")
    buffering = n - 1
    if buffering < 2 * ell:
        raise ValueError(f"path too short for ell={ell}")
    i = 0
    while ell * (2 ** (i + 1)) <= buffering:
        i += 1
    n0 = ell * (2**i)
    total = n0
    size = n0
    while size >= 2 * ell:
        total += size // (2 * ell)
        size //= 2
    return total + (1 if burst else 0)


def corollary_3_2_lower_bound(
    n: int, c: int = 1, ell: int = 1, delta: int = 0
) -> float:
    """Corollary 3.2: the Theorem 3.1 bound plus a terminal δ-burst."""
    if delta < 0:
        raise ValueError("delta must be >= 0")
    return theorem_3_1_lower_bound(n, c, ell) + delta


def odd_even_upper_bound(n: int) -> float:
    """Theorem 4.13: Odd-Even keeps every buffer at ≤ log₂ n + 3."""
    if n < 1:
        raise ValueError("need n >= 1")
    return math.log2(n) + 3.0


def path_residue_count(p: int) -> int:
    """Lemma 4.6: a full attachment scheme with a height-p node pins
    down ``2^(p-2) − 1`` distinct residues (0 for p ≤ 2)."""
    if p < 0:
        raise ValueError("height must be >= 0")
    if p <= 2:
        return 0
    return 2 ** (p - 2) - 1


def path_height_bound_from_residues(n: int) -> int:
    """Lemma 4.7 inverted: the largest m with 2^(m-2) − 1 ≤ n."""
    if n < 1:
        raise ValueError("need n >= 1")
    m = 2
    while path_residue_count(m + 1) <= n:
        m += 1
    return m


@lru_cache(maxsize=None)
def tree_residue_count(p: int) -> int:
    """Tree analogue of Lemma 4.6 with only *even*-height residues.

    §5 limits the exclusivity rule (Rule 2) to even-value residues, so
    only even slots are guaranteed distinct.  A packet ``x[i]`` then
    contributes ``⌊(i−2)/2⌋`` countable slots and the recurrence
    becomes ``r(p) = ⌊(p−2)/2⌋ + Σ_{even j ≤ p−2} r(j) + r(p−1)``,
    which grows like λ^p for a constant λ > 1 — yielding the paper's
    "Lemmas 4.6 and 4.7 yield a 2·log n + O(1) bound".
    """
    if p < 0:
        raise ValueError("height must be >= 0")
    if p <= 3:
        return 0
    total = (p - 2) // 2
    j = 2
    while j <= p - 2:
        total += tree_residue_count(j)
        j += 2
    total += tree_residue_count(p - 1)
    return total


def tree_upper_bound(n: int) -> int:
    """Theorem 5.11 made concrete: the largest m with
    ``tree_residue_count(m) ≤ n`` (≈ 2·log₂ n + O(1))."""
    if n < 1:
        raise ValueError("need n >= 1")
    m = 3
    while tree_residue_count(m + 1) <= n:
        m += 1
    return m


def downhill_or_flat_reference(n: int) -> float:
    """Theorem 4.1 reference curve: √n (constant factor is empirical)."""
    if n < 1:
        raise ValueError("need n >= 1")
    return math.sqrt(n)


def greedy_reference(n: int) -> float:
    """[23] reference curve: the greedy worst case grows linearly; the
    seesaw workload achieves roughly n/2 on a path of n nodes."""
    if n < 1:
        raise ValueError("need n >= 1")
    return n / 2.0


def centralized_upper_bound(sigma: int, rho: int = 1) -> int:
    """[21]: the centralized train algorithm needs buffers ≤ σ + 2ρ."""
    if sigma < 0 or rho < 1:
        raise ValueError("need sigma >= 0 and rho >= 1")
    return sigma + 2 * rho


def fie_growth_rate() -> float:
    """Local FIE sustains only throughput ½ against a far-end stream,
    so its injected-node buffer grows at rate ≈ ½ per step (unbounded
    in n — see [21] and experiment E1)."""
    return 0.5
