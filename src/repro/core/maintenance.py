"""Attachment-scheme maintenance (Algorithms 3 and 4 of the paper).

Algorithm 3 processes a round's balanced matching pair by pair;
Algorithm 4 (``processPair``) rearranges the attachments around one
(x_d, x_u) pair so that after x_d's height drops by one and x_u's rises
by one the scheme is still *full* and *valid*:

* line 4–5: if x_u was a residue inside a surviving slot of x_d, swap
  it into the dying top-packet slot so its detachment leaves no hole;
* line 7: the dying top packet ``x_d[h_d]`` passes its attachments to
  the new packet ``x_u[h_u + 1]`` (levels 1..min(h_d−2, h_u−1)); the
  rest are released (those residues stop being residues);
* line 8–9: if the pair had equal heights, x_d itself becomes the
  residue of the new packet's top slot — this is where "creating a node
  of height h+1 uses up two nodes of height h" happens;
* line 11–19: if x_u was a residue at slot ``z[i, h_u]``, detach it;
  the slot is refilled with x_d (when x_d lands exactly on height h_u)
  or with the residue that used to sit at ``x_d[h_d, h_u]``.

The functions mutate a working copy of the heights so that each pair is
processed in the intermediate configuration C_P the paper defines, and
raise :class:`AttachmentError` / :class:`CertificationError` if any of
the paper's supporting lemmas (4.9, 4.10) fails to hold — which, for a
genuine c = 1 Odd-Even execution with pre-injection decisions, never
happens (that *is* Theorem 4.13; the test-suite hammers it).
"""

from __future__ import annotations

import numpy as np

from .attachment import AttachmentScheme, Slot
from .classify import NodeKind, RoundClassification, classify_round
from .matching import BalancedMatching, build_matching, verify_matching
from ..errors import AttachmentError, CertificationError

__all__ = ["process_pair", "process_round"]


def process_pair(
    scheme: AttachmentScheme,
    heights: np.ndarray,
    d_pos: int,
    u_pos: int,
) -> None:
    """Algorithm 4 on the pair (x_d = d_pos, x_u = u_pos).

    ``heights`` is the intermediate configuration C_P and is updated in
    place (x_d down by one, x_u up by one) after the attachments are
    rearranged.
    """
    h_d = int(heights[d_pos])
    h_u = int(heights[u_pos])
    if h_d < 1:
        raise CertificationError(f"down node {d_pos} has height {h_d} < 1")
    if h_u > h_d and not scheme.even_only:
        # On paths the charging inequality holds for the intermediate
        # configuration too (the 2up processing order is chosen to make
        # it so).  On trees a *blocked* 2up can legitimately exceed its
        # crossover partner by one; the even-only scheme tolerates it
        # because the affected slots are untracked — feasibility is
        # verified below instead.
        raise CertificationError(
            f"pair ({d_pos},{u_pos}): h_u={h_u} > h_d={h_d} (Lemma 4.4)"
        )
    if scheme.is_residue(d_pos):
        # Lemma 4.10: residues never go down.
        raise CertificationError(
            f"down node {d_pos} is a residue (violates Lemma 4.10)"
        )
    if h_d == h_u and scheme.is_residue(u_pos):
        # Lemma 4.9: equal-height pairs have a non-residue up node.
        raise CertificationError(
            f"up node {u_pos} is a residue despite h_d == h_u (Lemma 4.9)"
        )

    # Levels the scheme tracks: all of 1..i-2 for paths, even levels
    # only for the §5 tree scheme (Rule 2 limited to even residues).
    def tracked(levels):
        if scheme.even_only:
            return [j for j in levels if j % 2 == 0]
        return list(levels)

    # ---- lines 4-5: swap x_u into the dying slot of x_d --------------
    u_guardian = scheme.guardian_of(u_pos)
    if (
        u_guardian is not None
        and u_guardian.node == d_pos
        and u_guardian.packet != h_d
    ):
        if u_guardian.level != h_u:
            raise AttachmentError(
                f"guardian slot {u_guardian} has level != h_u={h_u} (Rule 1)"
            )
        top_slot = Slot(d_pos, h_d, h_u)  # exists: h_u <= h_d - 2 here
        other = scheme.detach_slot(top_slot)
        scheme.detach_node(u_pos)
        scheme.attach(u_guardian, other)
        scheme.attach(top_slot, u_pos)
        u_guardian = top_slot

    # ---- line 7: pass the top packet's attachments to x_u ------------
    orig_top: dict[int, int] = {}
    for j in tracked(range(1, h_d - 1)):
        slot = Slot(d_pos, h_d, j)
        resident = scheme.residue_at(slot)
        if resident is None:
            raise AttachmentError(f"fullness: slot {slot} empty before pass")
        orig_top[j] = resident
        scheme.detach_slot(slot)
    for j in tracked(range(1, min(h_d - 2, h_u - 1) + 1)):
        scheme.attach(Slot(u_pos, h_u + 1, j), orig_top[j])

    # ---- lines 8-10: equal heights — x_d becomes a residue of x_u ----
    if h_d == h_u and h_d >= 2:
        if not scheme.even_only or (h_u - 1) % 2 == 0:
            scheme.attach(Slot(u_pos, h_u + 1, h_u - 1), d_pos)

    # feasibility: every tracked slot of the new packet must be filled
    if h_u + 1 >= 3:
        for j in tracked(range(1, h_u)):
            if scheme.residue_at(Slot(u_pos, h_u + 1, j)) is None:
                raise AttachmentError(
                    f"pair ({d_pos},{u_pos}): new slot "
                    f"{u_pos}[{h_u + 1},{j}] cannot be filled "
                    f"(h_d={h_d}, h_u={h_u})"
                )

    # ---- lines 11-19: x_u stops being a residue -----------------------
    if u_guardian is not None:
        z = u_guardian.node
        if z == d_pos and u_guardian.packet == h_d:
            # the guarding slot died with x_d's top packet; x_u was
            # detached by the line-7 removal loop above.
            pass
        else:
            scheme.detach_node(u_pos)
            if h_d == h_u + 1:
                # x_d lands exactly on height h_u: it refills the slot
                scheme.attach(u_guardian, d_pos)
            elif h_d >= h_u + 2 and z != d_pos:
                # refill with the residue formerly at x_d[h_d, h_u]
                y = orig_top.get(h_u)
                if y is None:
                    raise AttachmentError(
                        f"expected residue at {d_pos}[{h_d},{h_u}] to refill "
                        f"{u_guardian}"
                    )
                scheme.attach(u_guardian, y)
            else:
                raise AttachmentError(
                    f"pair ({d_pos},{u_pos}): guardian slot {u_guardian} "
                    f"of the up node cannot be refilled (h_d={h_d}, "
                    f"h_u={h_u})"
                )

    heights[d_pos] -= 1
    heights[u_pos] += 1


def _release_top_packet(
    scheme: AttachmentScheme, heights: np.ndarray, pos: int
) -> None:
    """A node drops a height without a pair (the unmatched rightmost
    down node): its dying top-packet slots simply release residues."""
    h = int(heights[pos])
    if scheme.is_residue(pos):
        raise CertificationError(
            f"unmatched down node {pos} is a residue (Lemma 4.10)"
        )
    levels = range(1, h - 1)
    if scheme.even_only:
        levels = [j for j in levels if j % 2 == 0]
    for j in levels:
        scheme.detach_slot(Slot(pos, h, j))
    heights[pos] -= 1


def _processing_order(
    matching: BalancedMatching,
    cls: RoundClassification,
    before: np.ndarray,
) -> list:
    """Order the pairs so the down-2up-down triple processes safely.

    The 2up node t belongs to two pairs; whichever is processed second
    sees t one packet taller, so its down partner must satisfy
    ``h(x_d) ≥ h(t) + 1``.  Odd-Even guarantees exactly one side does:

    * h(t) odd: t did not send, so ``h(s(t)) > h(t)`` and (Lemma 4.4's
      monotone run) the *right* down node is strictly taller — process
      the left pair first;
    * h(t) even: the *left* neighbour that fed t must be strictly
      taller (an equal-height even node would not have forwarded) —
      process the right pair first.

    The paper's Theorem 4.13 proof states the second pair sees t "as if
    of height h(t)+1"; this ordering is what makes that view consistent
    with the charging inequality.  All other pairs are node-disjoint,
    so their relative order is irrelevant.
    """
    pairs = list(matching.pairs)
    up2 = cls.up2_position
    if up2 is None:
        return pairs
    shared = [p for p in pairs if p.up == up2]
    if len(shared) != 2:
        return pairs
    left_pair = next(p for p in shared if p.down < up2)
    right_pair = next(p for p in shared if p.down > up2)
    ordered = (
        [right_pair, left_pair]
        if before[up2] % 2 == 0
        else [left_pair, right_pair]
    )
    rest = [p for p in pairs if p.up != up2]
    return ordered + rest


def process_round(
    scheme: AttachmentScheme,
    before: np.ndarray,
    after: np.ndarray,
    *,
    validate: bool = True,
) -> tuple[RoundClassification, BalancedMatching]:
    """Algorithm 3: advance the scheme from configuration C to C'.

    ``before``/``after`` are sink-free position-indexed height arrays.
    On return the scheme is full and valid for ``after`` (verified when
    ``validate`` is set).  Returns the round's classification and
    matching for inspection / rendering.
    """
    before = np.asarray(before, dtype=np.int64)
    after = np.asarray(after, dtype=np.int64)
    cls = classify_round(before, after)
    matching = build_matching(cls)
    if validate:
        verify_matching(matching, cls, before)

    work = before.copy()
    for pair in _processing_order(matching, cls, before):
        process_pair(scheme, work, pair.down, pair.up)

    if matching.unmatched is not None:
        kind = cls.kinds[matching.unmatched]
        if kind is NodeKind.DOWN:
            _release_top_packet(scheme, work, matching.unmatched)
        else:
            # the leading-zero: its intermediate height is at most 1
            # (0 for a plain up node, 1 for the second copy of a 2up
            # that started from 0), so the increment creates no slots.
            if scheme.is_residue(matching.unmatched):
                raise CertificationError(
                    "leading-zero node is a residue (it was at height 0)"
                )
            if work[matching.unmatched] > 1:
                raise CertificationError(
                    f"unmatched up node at {matching.unmatched} has "
                    f"intermediate height {work[matching.unmatched]} > 1 — "
                    "its new packet would need unfillable slots"
                )
            work[matching.unmatched] += 1

    if (work != after).any():
        raise CertificationError(
            "pair processing did not reproduce C' "
            f"(diff at positions {np.flatnonzero(work != after).tolist()})"
        )
    if validate:
        # Lemma 4.11, Fact 1: no up node remains a residue once its
        # pair is processed (it was detached by lines 4-5/7/11-19).
        for pos in set(cls.non_steady):
            if cls.kinds[pos] in (NodeKind.UP, NodeKind.UP2):
                if scheme.is_residue(pos):
                    raise CertificationError(
                        f"up node {pos} is still a residue after its "
                        "round (Lemma 4.11, Fact 1)"
                    )
        scheme.validate(after)
    return cls, matching
