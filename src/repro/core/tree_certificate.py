"""Runtime certification of the Tree algorithm's bound (Theorem 5.11).

The §5 proof re-uses the path machinery with three changes, all
implemented here:

* the balanced matching is built per priority line with crossover
  pairs (Algorithm 6, :mod:`repro.core.tree_matching`);
* the attachment scheme only tracks *even*-height residues (Rule 2 is
  limited to even values), so the residue count of Lemma 4.6 halves its
  exponent and the bound becomes ≈ 2·log₂ n + O(1)
  (:func:`repro.core.bounds.tree_upper_bound` computes it exactly);
* the direction/interval rules 3–5 are replaced by Rules 6–7
  (Definition 5.4), checked on the tree by :func:`validate_tree_rules`.

As with paths, a clean certified run *mechanically* proves the height
bound for that execution; a raised :class:`CertificationError` pins
down the exact round and rule that broke.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .attachment import AttachmentScheme
from .bounds import tree_upper_bound
from .classify import NodeKind
from .maintenance import process_pair
from .tree_matching import (
    TreeMatching,
    TreePair,
    build_tree_matching,
    classify_tree_round,
    decompose_lines,
    tree_path_between,
    verify_tree_matching,
)
from ..errors import AttachmentError, CertificationError
from ..network.events import StepRecord
from ..network.topology import Topology

__all__ = ["TreeCertificateReport", "TreeCertifier", "validate_tree_rules",
           "certify_tree_run"]


def validate_tree_rules(
    scheme: AttachmentScheme, heights: np.ndarray, topology: Topology
) -> None:
    """Check Rules 1, 2 (by construction), 6, 7 and even-fullness."""
    heights = np.asarray(heights, dtype=np.int64)
    for slot, y in scheme:
        x = slot.node
        if slot.packet > heights[x]:
            raise AttachmentError(
                f"{slot}: node {x} has height {heights[x]} < packet "
                f"{slot.packet} (stale slot)"
            )
        if heights[y] != slot.level:
            raise AttachmentError(
                f"Rule 1: residue {y} has height {heights[y]} != "
                f"level {slot.level}"
            )
        # Rule 6: the guardian of an even residue is not behind it,
        # i.e. x is not in y's subtree (y is not on x's route to sink).
        if y in topology.path_to_sink(x)[1:]:
            raise AttachmentError(
                f"Rule 6: guardian {x} is behind residue {y}"
            )
        # Rule 7: interval heights along both branches of the pair.
        between, tip = tree_path_between(topology, x, y)
        if tip is None:
            for z in between:
                if heights[z] < slot.level:
                    raise AttachmentError(
                        f"Rule 7: node {z} between residue {y} and "
                        f"guardian {x} is below {slot.level}"
                    )
        else:
            x_route = topology.path_to_sink(x)
            x_side = set(x_route[1 : x_route.index(tip)])
            for z in between:
                bound = slot.level + 1 if z in x_side else slot.level
                if heights[z] < bound:
                    raise AttachmentError(
                        f"Rule 7 (crossover): node {z} (h={heights[z]}) on "
                        f"the {'guardian' if z in x_side else 'residue'} "
                        f"branch of ({x},{y}) is below {bound}"
                    )

    # even-fullness
    for v in range(topology.n):
        for i, j in scheme.expected_slots(int(heights[v])):
            from .attachment import Slot

            if scheme.residue_at(Slot(v, i, j)) is None:
                raise AttachmentError(
                    f"fullness: slot {v}[{i},{j}] empty (h={heights[v]})"
                )


def _order_tree_pairs(
    matching: TreeMatching,
    kinds: list[NodeKind],
    before: np.ndarray,
    topology: Topology,
) -> list[TreePair]:
    """Same parity rule as the path case for the shared 2up node."""
    pairs = list(matching.pairs)
    up2 = next(
        (i for i, k in enumerate(kinds) if k is NodeKind.UP2), None
    )
    if up2 is None:
        return pairs
    shared = [p for p in pairs if p.up == up2]
    if len(shared) != 2:
        return pairs
    rest = [p for p in pairs if p.up != up2]
    # the "left" pair is the one whose down node lies behind the 2up
    # node (the 2up is on the down node's route to the sink).
    a, b = shared
    a_behind = up2 in topology.path_to_sink(a.down)[1:]
    left_pair, right_pair = (a, b) if a_behind else (b, a)
    return (
        [right_pair, left_pair]
        if before[up2] % 2 == 0
        else [left_pair, right_pair]
    ) + rest


@dataclass
class TreeCertificateReport:
    """Outcome of a certified tree run."""

    n: int
    rounds: int = 0
    max_height: int = 0
    max_residues: int = 0
    crossover_pairs: int = 0
    bound: int = 0

    @property
    def certified(self) -> bool:
        return self.max_height <= self.bound


class TreeCertifier:
    """Maintains the §5 proof object alongside a Tree-policy run.

    Consumes :class:`StepRecord` traces (it needs the actual sends to
    reconstruct priority lines) from a packet or fast simulator running
    :class:`repro.policies.tree.TreeOddEvenPolicy` with pre-injection
    decisions.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        tie_rule: str = "min_id",
        validate_every: int = 1,
    ) -> None:
        self.topology = topology
        self.tie_rule = tie_rule
        self.validate_every = max(1, int(validate_every))
        self.scheme = AttachmentScheme(even_only=True)
        self.heights = np.zeros(topology.n, dtype=np.int64)
        self.report = TreeCertificateReport(
            n=topology.n, bound=tree_upper_bound(topology.n)
        )

    def observe(self, record: StepRecord) -> None:
        """Advance the certificate by one recorded round."""
        topo = self.topology
        before = np.asarray(record.heights_before, dtype=np.int64)
        after = np.asarray(record.heights_after, dtype=np.int64)
        if (before != self.heights).any():
            raise CertificationError("trace does not chain with certifier state")
        injection = record.injections[0] if record.injections else None
        if len(record.injections) > 1:
            raise CertificationError("tree certificate requires rate c = 1")

        decomp = decompose_lines(
            topo, before, record.sends, injection, self.tie_rule
        )
        matching = build_tree_matching(topo, before, after, decomp, injection)
        kinds = classify_tree_round(before, after, topo)
        validate = self.report.rounds % self.validate_every == 0
        if validate:
            verify_tree_matching(matching, topo, before, kinds)

        work = before.copy()
        for pair in _order_tree_pairs(matching, kinds, before, topo):
            process_pair(self.scheme, work, pair.down, pair.up)

        if matching.unmatched is not None:
            pos = matching.unmatched
            if kinds[pos] is NodeKind.DOWN:
                if self.scheme.is_residue(pos):
                    raise CertificationError(
                        f"unmatched down node {pos} is a residue"
                    )
                h = int(work[pos])
                from .attachment import Slot

                levels = [j for j in range(1, h - 1) if j % 2 == 0]
                for j in levels:
                    self.scheme.detach_slot(Slot(pos, h, j))
                work[pos] -= 1
            else:
                if self.scheme.is_residue(pos):
                    raise CertificationError(
                        f"leading-zero {pos} is a residue"
                    )
                if work[pos] > 1:
                    raise CertificationError(
                        f"unmatched up node {pos} has intermediate height "
                        f"{work[pos]} > 1"
                    )
                work[pos] += 1

        if (work != after).any():
            raise CertificationError(
                "tree pair processing did not reproduce C' (diff at "
                f"{np.flatnonzero(work != after).tolist()})"
            )
        self.heights = after.copy()

        r = self.report
        r.rounds += 1
        r.max_height = max(r.max_height, int(after.max(initial=0)))
        r.max_residues = max(r.max_residues, len(self.scheme))
        r.crossover_pairs += sum(1 for p in matching.pairs if p.crossover)
        if validate:
            validate_tree_rules(self.scheme, after, topo)
        if r.max_height > r.bound:
            raise CertificationError(
                f"height {r.max_height} exceeds the mechanical tree bound "
                f"{r.bound}"
            )


def certify_tree_run(
    topology: Topology,
    adversary,
    steps: int,
    *,
    tie_rule: str = "min_id",
    validate_every: int = 1,
    engine: str = "tree",
) -> TreeCertificateReport:
    """Run the Tree policy under ``adversary`` with the certifier
    attached; returns the certificate report.

    The certifier only consumes :class:`~repro.network.events.StepRecord`
    traces, so any engine that emits them can drive it.  ``engine``
    selects the backend: ``"tree"`` (default) is the vectorised
    height-only :class:`~repro.network.tree_engine.TreeEngine`;
    ``"simulator"`` is the reference packet-tracking
    :class:`~repro.network.simulator.Simulator`.  Both produce
    bit-identical certificates (pinned by the cross-engine parity
    suite).
    """
    from ..network.events import TraceRecorder
    from ..policies.tree import TreeOddEvenPolicy

    if engine == "tree":
        from ..network.tree_engine import TreeEngine as engine_cls
    elif engine == "simulator":
        from ..network.simulator import Simulator as engine_cls
    else:
        raise CertificationError(
            f"unknown certify_tree_run engine {engine!r} "
            "(expected 'tree' or 'simulator')"
        )

    trace = TraceRecorder(keep_last=1)
    sim = engine_cls(
        topology,
        TreeOddEvenPolicy(tie_rule=tie_rule),
        adversary,
        trace=trace,
        decision_timing="pre_injection",
    )
    cert = TreeCertifier(
        topology, tie_rule=tie_rule, validate_every=validate_every
    )
    for _ in range(steps):
        sim.step()
        cert.observe(trace[-1])
    return cert.report
