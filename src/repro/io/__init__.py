"""Result records, trace files, durable checkpoints and serialisation."""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    load_checkpoint,
    read_checkpoint_header,
    save_checkpoint,
)
from .report import load_results_dir, markdown_table, render_markdown_report
from .results import (
    ExperimentResult,
    load_result,
    load_run_result,
    save_result,
    save_run_result,
)
from .tracefile import load_trace, save_trace, trace_to_replay_tape

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_header",
    "ExperimentResult",
    "save_result",
    "load_result",
    "save_run_result",
    "load_run_result",
    "load_results_dir",
    "markdown_table",
    "render_markdown_report",
    "save_trace",
    "load_trace",
    "trace_to_replay_tape",
]
