"""Result records, trace files and serialisation."""

from .report import load_results_dir, markdown_table, render_markdown_report
from .results import (
    ExperimentResult,
    load_result,
    load_run_result,
    save_result,
    save_run_result,
)
from .tracefile import load_trace, save_trace, trace_to_replay_tape

__all__ = [
    "ExperimentResult",
    "save_result",
    "load_result",
    "save_run_result",
    "load_run_result",
    "load_results_dir",
    "markdown_table",
    "render_markdown_report",
    "save_trace",
    "load_trace",
    "trace_to_replay_tape",
]
