"""JSONL persistence for step traces.

A recorded :class:`~repro.network.events.TraceRecorder` can be written
to a JSON-lines file and reloaded later — for sharing a failing run,
re-auditing it with :func:`repro.network.validation.check_trace`, or
replaying its injections against another policy via
:class:`~repro.adversaries.ReplayAdversary`.

Format: one JSON object per line with keys ``step``, ``before``,
``injections``, ``sends``, ``after``, ``delivered`` (plus ``dropped``
and ``drops`` for steps that lost packets under the finite-buffer
model); a header line carries the topology's successor array so the
file is self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..network.events import StepRecord, TraceRecorder
from ..network.topology import Topology

__all__ = ["save_trace", "load_trace", "trace_to_replay_tape"]

_FORMAT = "repro-trace-v1"


def save_trace(
    trace: TraceRecorder | list[StepRecord],
    topology: Topology,
    path: str | Path,
) -> Path:
    """Write a trace (with its topology) as JSONL; returns the path."""
    path = Path(path)
    records = list(trace)
    with path.open("w") as fh:
        fh.write(
            json.dumps(
                {
                    "format": _FORMAT,
                    "n": topology.n,
                    "succ": topology.succ.tolist(),
                    "steps": len(records),
                }
            )
            + "\n"
        )
        for rec in records:
            d = {
                "step": rec.step,
                "before": np.asarray(rec.heights_before).tolist(),
                "injections": list(rec.injections),
                "sends": np.asarray(rec.sends).tolist(),
                "after": np.asarray(rec.heights_after).tolist(),
                "delivered": rec.delivered,
            }
            if rec.dropped:
                d["dropped"] = rec.dropped
                d["drops"] = [list(t) for t in rec.drops]
            fh.write(json.dumps(d) + "\n")
    return path


def load_trace(path: str | Path) -> tuple[Topology, list[StepRecord]]:
    """Read a JSONL trace; returns (topology, records).

    Raises
    ------
    ValueError
        If the header is missing or announces an unknown format.
    """
    path = Path(path)
    with path.open() as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a trace file") from exc
        if header.get("format") != _FORMAT:
            raise ValueError(
                f"{path}: unknown trace format {header.get('format')!r}"
            )
        topology = Topology(np.asarray(header["succ"], dtype=np.int64))
        records: list[StepRecord] = []
        for line in fh:
            d = json.loads(line)
            records.append(
                StepRecord(
                    step=int(d["step"]),
                    heights_before=np.asarray(d["before"], dtype=np.int64),
                    injections=tuple(d["injections"]),
                    sends=np.asarray(d["sends"], dtype=np.int64),
                    heights_after=np.asarray(d["after"], dtype=np.int64),
                    delivered=int(d["delivered"]),
                    dropped=int(d.get("dropped", 0)),
                    drops=tuple(
                        (int(n), str(c), int(k))
                        for n, c, k in d.get("drops", ())
                    ),
                )
            )
    return topology, records


def trace_to_replay_tape(
    records: list[StepRecord],
) -> list[tuple[int, ...]]:
    """Extract the injection tape (one batch per step) from a trace,
    ready for :class:`repro.adversaries.ReplayAdversary`."""
    return [tuple(rec.injections) for rec in records]
