"""Durable engine checkpoints: atomic, checksummed, versioned.

The in-memory ``snapshot()`` / ``restore()`` pair on every engine is
enough to survive an *induced* crash inside one process (see
:func:`repro.network.faults.run_with_recovery`), but a real worker
death loses the process memory along with the run.  This module turns a
snapshot into a file that a **fresh process** can resume from, with the
failure modes of real storage taken seriously:

* **atomic writes** — the checkpoint is written to a temp file in the
  destination directory, flushed, ``fsync``'d and ``os.replace``'d into
  place, so a crash mid-write can never leave a half-written file under
  the real name;
* **payload checksum** — a SHA-256 over the pickled snapshot is stored
  in the header and verified *before* unpickling, so a flipped bit or
  truncated tail raises :class:`~repro.errors.CheckpointError` instead
  of feeding garbage to ``pickle.loads``;
* **schema version + engine class** — the header names the format, the
  schema version and the engine class that produced the snapshot;
  mismatches are refused with a named diagnosis rather than restored
  into the wrong kind of engine.

File layout (version 1)::

    <one JSON header line>\\n
    <pickled snapshot bytes>

The header is plain JSON so ``head -1 run.ckpt`` is a usable
inspection tool; the payload is a pickle because snapshots carry live
numpy arrays, packet deques and deep-copied policy/adversary objects.
Checksum-before-unpickle also means a checkpoint file is only ever
unpickled after its integrity is proven.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from ..errors import CheckpointError

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "atomic_write_bytes",
    "atomic_write_text",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_header",
]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

#: exactly the fields a version-1 header carries.  Load refuses headers
#: with missing or unknown keys: every header byte is then load-bearing,
#: so any single-byte corruption of the header is detectable (a flipped
#: key name cannot silently disable the check it used to name).
_HEADER_KEYS = frozenset(
    {"format", "version", "engine", "step", "payload_bytes", "sha256"}
)


# ----------------------------------------------------------------------
# atomic file primitives (shared with the runner's durable run store)
def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename, which POSIX makes
    atomic: readers see either the old complete file or the new
    complete file, never a prefix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    try:  # best effort: persist the directory entry too
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomic UTF-8 text write (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


# ----------------------------------------------------------------------
def save_checkpoint(engine: Any, path: str | Path) -> Path:
    """Persist ``engine.snapshot()`` to ``path`` atomically.

    Works on any engine exposing ``snapshot()`` and ``step_index``
    (:class:`~repro.network.simulator.Simulator`,
    :class:`~repro.network.engine_fast.PathEngine`,
    :class:`~repro.network.tree_engine.TreeEngine`,
    :class:`~repro.network.dag_engine.DagEngine`).  Returns the path.
    """
    path = Path(path)
    try:
        payload = pickle.dumps(
            engine.snapshot(), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as err:
        raise CheckpointError(
            f"{path}: cannot serialise a {type(engine).__name__} "
            f"snapshot ({type(err).__name__}: {err})"
        ) from err
    header = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "engine": type(engine).__name__,
        "step": int(engine.step_index),
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    buf = io.BytesIO()
    # compact separators: no cosmetic bytes in the header, so corruption
    # can never land on a byte that doesn't matter
    buf.write(
        json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )
    buf.write(b"\n")
    buf.write(payload)
    return atomic_write_bytes(path, buf.getvalue())


def _read_raw(path: Path) -> tuple[dict[str, Any], bytes]:
    """Split a checkpoint file into (header, payload), diagnosing both."""
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(f"{path}: checkpoint file does not exist") from None
    except OSError as err:
        raise CheckpointError(f"{path}: cannot read checkpoint: {err}") from err
    head, sep, payload = raw.partition(b"\n")
    if not sep:
        raise CheckpointError(
            f"{path}: not a {CHECKPOINT_FORMAT} file (no header line)"
        )
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise CheckpointError(
            f"{path}: checkpoint header is not valid JSON "
            f"(corrupt or foreign file)"
        ) from None
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: not a {CHECKPOINT_FORMAT} file "
            f"(format={header.get('format')!r} if any)"
        )
    return header, payload


def read_checkpoint_header(path: str | Path) -> dict[str, Any]:
    """Return the header dict without touching the pickled payload."""
    header, _ = _read_raw(Path(path))
    return header


def load_checkpoint(engine: Any, path: str | Path) -> dict[str, Any]:
    """Verify ``path`` and restore it into ``engine``; return the header.

    Raises
    ------
    CheckpointError
        On any integrity problem — missing/truncated file, checksum
        mismatch, unknown schema version, wrong engine class, or a
        payload that fails to unpickle.  The engine is left untouched
        in every failure case; the payload is only unpickled after its
        checksum verifies.
    """
    path = Path(path)
    header, payload = _read_raw(path)
    missing = _HEADER_KEYS - header.keys()
    unknown = header.keys() - _HEADER_KEYS
    if missing or unknown:
        detail = []
        if missing:
            detail.append(f"missing {sorted(missing)}")
        if unknown:
            detail.append(f"unknown {sorted(unknown)}")
        raise CheckpointError(
            f"{path}: malformed checkpoint header ({'; '.join(detail)})"
        )
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint schema version {version!r} is not the "
            f"supported version {CHECKPOINT_VERSION}"
        )
    written_by = header.get("engine")
    if written_by != type(engine).__name__:
        raise CheckpointError(
            f"{path}: checkpoint was written by engine {written_by!r}, "
            f"refusing to restore into a {type(engine).__name__}"
        )
    expected_len = header.get("payload_bytes")
    if expected_len is not None and len(payload) != int(expected_len):
        raise CheckpointError(
            f"{path}: checkpoint payload is {len(payload)} bytes, header "
            f"promises {expected_len} (truncated or appended-to file)"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(
            f"{path}: checkpoint payload checksum mismatch (header "
            f"{str(header.get('sha256'))[:12]}…, actual {digest[:12]}…) — "
            f"refusing to unpickle a corrupt file"
        )
    try:
        snap = pickle.loads(payload)
    except Exception as err:  # checksum passed but pickle still broke
        raise CheckpointError(
            f"{path}: checkpoint payload failed to unpickle "
            f"({type(err).__name__}: {err})"
        ) from err
    step = _snapshot_step(snap)
    if step is not None and step != header.get("step"):
        raise CheckpointError(
            f"{path}: header claims step {header.get('step')!r} but the "
            f"payload is at step {step} (tampered or rewritten header)"
        )
    engine.restore(snap)
    return header


def _snapshot_step(snap: Any) -> int | None:
    """The step index recorded inside a snapshot payload, if findable.

    The checksum only covers the payload, so the header's ``step``
    field is cross-checked against the payload's own step — a header
    edit that survives JSON parsing is still caught.
    """
    if not isinstance(snap, dict):
        return None
    if "step" in snap:
        return int(snap["step"])
    inner = snap.get("engine")
    if isinstance(inner, dict) and "step" in inner:
        return int(inner["step"])
    if hasattr(inner, "step"):
        return int(inner.step)
    return None
