"""Markdown reproduction reports (the EXPERIMENTS.md generator).

The logic behind ``tools/generate_experiments_md.py``, importable and
tested: load saved :class:`~repro.io.results.ExperimentResult` records
and render the paper-vs-measured markdown document.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

__all__ = ["markdown_table", "load_results_dir", "render_markdown_report"]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """A GitHub-flavoured markdown table."""

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.2f}".rstrip("0").rstrip(".")
        return str(v)

    out = ["| " + " | ".join(str(h) for h in headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(out)


def load_results_dir(directory: str | Path) -> list[dict[str, Any]]:
    """Load all ``e*.json`` result records, ordered by experiment id."""
    return [
        json.loads(p.read_text())
        for p in sorted(
            Path(directory).glob("e*.json"), key=lambda p: int(p.stem[1:])
        )
    ]


def render_markdown_report(
    results: Sequence[dict[str, Any]],
    *,
    preamble: str = "",
) -> str:
    """Render the full paper-vs-measured report as markdown text."""
    lines: list[str] = []
    if preamble:
        lines.append(preamble)
    passed = sum(1 for r in results if r["passed"])
    lines.append(
        f"**Status: {passed}/{len(results)} experiments pass their "
        "shape assertions.**\n"
    )
    for r in results:
        status = "PASS" if r["passed"] else "FAIL"
        lines.append(f"## {r['experiment_id']} — {r['title']} [{status}]\n")
        lines.append(f"*Paper claim.* {r['paper_claim']}\n")
        lines.append(markdown_table(r["headers"], r["rows"]))
        lines.append("")
        if r["notes"]:
            lines.append("*Measured notes.*")
            lines.extend(f"- {note}" for note in r["notes"])
            lines.append("")
    return "\n".join(lines)
