"""Result records and serialisation for the experiment harness.

Every experiment produces an :class:`ExperimentResult`: a table (the
regenerated "paper artefact"), optional ASCII-chart artefacts, free-form
notes, and a pass/fail verdict for its shape assertion ("who wins, by
roughly what factor").  Results serialise to JSON and render to text;
``EXPERIMENTS.md`` is generated from these records.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from ..analysis.tables import format_table, rows_to_csv
from ..network.simulator import RunResult

__all__ = [
    "ExperimentResult",
    "save_result",
    "load_result",
    "save_run_result",
    "load_run_result",
]


@dataclass
class ExperimentResult:
    """The complete outcome of one experiment run."""

    experiment_id: str
    title: str
    paper_claim: str
    headers: list[str]
    rows: list[list[Any]]
    passed: bool
    preset: str = "quick"
    notes: list[str] = field(default_factory=list)
    artifacts: dict[str, str] = field(default_factory=dict)
    params: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_text(self, include_artifacts: bool = True) -> str:
        """Human-readable report."""
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"=== {self.experiment_id}: {self.title} [{status}] "
            f"(preset={self.preset}) ===",
            f"paper claim: {self.paper_claim}",
            "",
            format_table(self.headers, self.rows),
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {n}" for n in self.notes)
        if include_artifacts and self.artifacts:
            for name, art in self.artifacts.items():
                lines.extend(["", f"--- {name} ---", art])
        return "\n".join(lines)

    def to_csv(self) -> str:
        return rows_to_csv(self.headers, self.rows)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=str)


def save_result(result: ExperimentResult, directory: str | Path) -> Path:
    """Write ``<id>.json`` and ``<id>.txt`` into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = directory / result.experiment_id.lower()
    base.with_suffix(".json").write_text(result.to_json())
    base.with_suffix(".txt").write_text(result.to_text())
    return base.with_suffix(".json")


def load_result(path: str | Path) -> ExperimentResult:
    """Load a previously saved JSON result."""
    data = json.loads(Path(path).read_text())
    return ExperimentResult(**data)


_RUN_RESULT_FORMAT = "repro-run-result-v1"


def save_run_result(result: RunResult, path: str | Path) -> Path:
    """Serialise a :class:`~repro.network.simulator.RunResult` to JSON.

    The drop-accounting fields added by the robustness extension
    (``dropped``, ``drops_by_cause``, ``drops_by_node``) round-trip
    exactly; ``drops_by_node`` keys survive JSON's string-key coercion
    via :func:`load_run_result`.
    """
    path = Path(path)
    data = asdict(result)
    data["format"] = _RUN_RESULT_FORMAT
    path.write_text(json.dumps(data, indent=2, sort_keys=True))
    return path


def load_run_result(path: str | Path) -> RunResult:
    """Load a :class:`RunResult` saved by :func:`save_run_result`.

    Raises
    ------
    ValueError
        If the file does not announce the run-result format.
    """
    path = Path(path)
    data = json.loads(path.read_text())
    if data.pop("format", None) != _RUN_RESULT_FORMAT:
        raise ValueError(f"{path}: not a saved RunResult")
    data["drops_by_node"] = {
        int(k): int(v) for k, v in data.get("drops_by_node", {}).items()
    }
    return RunResult(**data)
