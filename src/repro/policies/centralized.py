"""Centralized train-forwarding algorithm of Miller & Patt-Shamir [21].

The paper's introduction contrasts its *local* Θ(log n) algorithm with
the *centralized* constant-buffer algorithm of [21]: with injection
rate ρ (= link capacity) and burstiness σ, buffers of size σ + 2ρ
suffice.  The algorithm is "unavoidably centralized, relying on
simultaneously forwarding long *trains* of packets", and (footnote 1 of
the paper) for ρ > 1 it must be run as ρ separate single-packet
activations rather than one ρ-packet train.

Mechanism implemented here, for ρ = c = 1 on arbitrary in-trees:

* when the adversary injects a packet at node t, the algorithm
  *activates* the path from t to the sink — every non-empty node on it
  forwards one packet, simultaneously (a train);
* each injected packet in a σ-burst triggers its own activation (a node
  can still forward at most c = 1 per step, so colliding trains stall
  behind one another — the σ term of the bound);
* on injection-free steps one pulse is fired from the deepest non-empty
  node, purely for work conservation (it cannot raise any buffer).

Why buffers stay at σ + 2: a node on an activated path that holds a
packet sends one and receives at most one — no growth; an empty node
receives at most one per activation; only the injected node nets +1,
and it is also the head of its own activation.  Global knowledge of the
injection site is exactly what a local algorithm cannot have — which is
why Theorem 3.1 applies to everything else in this library and not to
this policy (``locality = None``).
"""

from __future__ import annotations

import numpy as np

from .base import ForwardingPolicy
from ..network.topology import Topology

__all__ = ["CentralizedTrainPolicy"]


class CentralizedTrainPolicy(ForwardingPolicy):
    """Injection-path activation (the [21] constant-buffer algorithm)."""

    name = "centralized-train"
    locality = None  # centralized
    max_capacity = 1

    def __init__(self) -> None:
        self._pending: tuple[int, ...] = ()

    def reset(self, topology: Topology) -> None:
        self._pending = ()

    def observe_injections(self, sites: tuple[int, ...]) -> None:
        self._pending = tuple(sites)

    def send_mask(self, heights: np.ndarray, topology: Topology) -> np.ndarray:
        mask = np.zeros(topology.n, dtype=bool)
        starts = list(dict.fromkeys(self._pending))  # dedupe, keep order
        self._pending = ()
        if not starts:
            nonempty = np.flatnonzero(heights > 0)
            if nonempty.size == 0:
                return mask
            depths = topology.depth[nonempty]
            starts = [int(nonempty[int(np.argmax(depths))])]
        for start in starts:
            u = int(start)
            while u != topology.sink:
                if heights[u] > 0:
                    mask[u] = True
                u = int(topology.succ[u])
        return mask
    # Note: a node appearing on several activated paths still sends at
    # most one packet (mask is boolean) — the c = 1 link capacity.
