"""A candidate rate-c generalisation of Odd-Even (open question of §6).

The paper's conclusions: *"The existence of local algorithms with
O(log n) buffers for higher rate adversaries remains open."*  Theorem
3.1 forces Ω(c·log n/ℓ), so the natural target is O(c·log n) with a
1-local rule.

The candidate implemented here — **Scaled Odd-Even** — runs Odd-Even on
heights quantised to blocks of ``c`` packets: with
``H(v) = ⌈h(v)/c⌉``,

* if ``H(v)`` is odd, forward ``min(h(v), c)`` packets iff
  ``H(s(v)) ≤ H(v)``;
* if ``H(v)`` is even, forward iff ``H(s(v)) < H(v)``.

For c = 1 this *is* Algorithm 1.  The intuition transfers: a block of c
packets plays the role of one packet, so the attachment-scheme cost
argument should pay per block, giving ≈ c·(log₂ n + O(1)).  This module
makes the conjecture executable; experiment E16 attacks it with the
Theorem 3.1 adversary at c ∈ {1, 2, 4} and classifies the growth.  The
measured behaviour (see EXPERIMENTS.md) is logarithmic at every tested
rate — evidence for, not a proof of, the conjecture.
"""

from __future__ import annotations

import numpy as np

from .base import ForwardingPolicy
from ..errors import PolicyError
from ..network.topology import Topology

__all__ = ["ScaledOddEvenPolicy"]


class ScaledOddEvenPolicy(ForwardingPolicy):
    """Odd-Even on ⌈h/c⌉-quantised heights; forwards c-packet blocks."""

    locality = 1

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise PolicyError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.max_capacity = int(capacity)
        self.name = f"scaled-odd-even(c={capacity})"

    def check_capacity(self, capacity: int) -> None:
        if capacity != self.capacity:
            raise PolicyError(
                f"{self.name} must run at exactly c = {self.capacity}"
            )

    def _blocks(self, h: np.ndarray) -> np.ndarray:
        return -(-h // self.capacity)  # ceil division

    def send_mask(self, heights: np.ndarray, topology: Topology) -> np.ndarray:
        H = self._blocks(heights)
        H_succ = H[topology.succ]
        odd = (H & 1) == 1
        mask = (heights > 0) & np.where(odd, H_succ <= H, H_succ < H)
        mask[topology.sink] = False
        return mask

    def send_counts(
        self, heights: np.ndarray, topology: Topology, capacity: int
    ) -> np.ndarray:
        self.check_capacity(capacity)
        mask = self.send_mask(heights, topology)
        counts = np.where(
            mask, np.minimum(heights, self.capacity), 0
        ).astype(np.int64)
        return counts

    def fleet_send_counts(
        self, heights: np.ndarray, topology: Topology, capacity: int
    ) -> np.ndarray | None:
        if capacity != self.capacity:
            return None
        H = self._blocks(heights)
        if topology.is_canonical_path:
            H_succ = np.empty_like(H)
            H_succ[:, :-1] = H[:, 1:]
            H_succ[:, -1] = 0
        else:
            H_succ = H[:, topology.succ]
        # odd block parity forwards on flat: H_succ <= H == H_succ < H+1
        mask = (heights > 0) & (H_succ < H + (H & 1))
        mask[:, topology.sink] = False
        return np.where(
            mask, np.minimum(heights, self.capacity), 0
        ).astype(heights.dtype)
