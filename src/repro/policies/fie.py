"""Local Forward-If-Empty (FIE) baseline.

The *local* reading of Forward-If-Empty — forward a packet iff the
successor's buffer is currently empty — is one of the local algorithms
analysed by Miller & Patt-Shamir [21] and shown there to admit
unbounded buffers in the worst case: a left-end injection stream can
only progress every other step (the successor must first drain), so the
inflow (rate 1) exceeds the sustainable outflow (rate ½) and the
injected node's buffer grows without bound.

Experiment E1 reproduces exactly that failure mode.  The *centralized*
train-forwarding repair from [21] lives in
:mod:`repro.policies.centralized`.
"""

from __future__ import annotations

import numpy as np

from .base import PairwisePolicy

__all__ = ["ForwardIfEmptyPolicy"]


class ForwardIfEmptyPolicy(PairwisePolicy):
    """Forward iff the successor's buffer is empty. Unbounded worst case."""

    name = "fie"
    locality = 1
    max_capacity = 1

    def forwards(self, h_v: np.ndarray, h_succ: np.ndarray) -> np.ndarray:
        return h_succ == 0
