"""Name → policy factory registry.

Used by the CLI, the experiment harness and the benchmarks so that a
policy can be selected by a stable string name.  Parametrised policies
register a canonical default; construct variants directly for sweeps.
"""

from __future__ import annotations

from typing import Callable

from .base import ForwardingPolicy
from .centralized import CentralizedTrainPolicy
from .downhill import DownhillOrFlatPolicy, DownhillPolicy
from .fie import ForwardIfEmptyPolicy
from .greedy import GreedyPolicy
from .modular import ModularPolicy
from .odd_even import OddEvenPolicy
from .rate_c import ScaledOddEvenPolicy
from .tree import TreeOddEvenPolicy
from ..errors import PolicyError

__all__ = ["POLICY_FACTORIES", "make_policy", "available_policies"]

POLICY_FACTORIES: dict[str, Callable[[], ForwardingPolicy]] = {
    "odd-even": OddEvenPolicy,
    "greedy": GreedyPolicy,
    "downhill": DownhillPolicy,
    "downhill-or-flat": DownhillOrFlatPolicy,
    "fie": ForwardIfEmptyPolicy,
    "centralized-train": CentralizedTrainPolicy,
    "tree-odd-even": TreeOddEvenPolicy,
    "modular-3": lambda: ModularPolicy(3, (1,)),
    "scaled-odd-even-2": lambda: ScaledOddEvenPolicy(2),
    "modular-4": lambda: ModularPolicy(4, (1, 3)),
}


def make_policy(name: str) -> ForwardingPolicy:
    """Instantiate a registered policy by name.

    Raises
    ------
    PolicyError
        If the name is unknown (the message lists the valid options).
    """
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        raise PolicyError(
            f"unknown policy {name!r}; known: {', '.join(sorted(POLICY_FACTORIES))}"
        ) from None
    return factory()


def available_policies() -> tuple[str, ...]:
    """Sorted names of all registered policies."""
    return tuple(sorted(POLICY_FACTORIES))
