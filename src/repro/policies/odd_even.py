"""Algorithm 1 — the paper's Odd-Even policy (§4).

The entire algorithm, quoted from the abstract:

    *If the size of your buffer is odd, forward a message if your
    successor's buffer size is equal or lower.  If your buffer size is
    even, forward a message only if your successor's buffer size is
    strictly lower.*

Theorem 4.13 proves this 1-local rule keeps every buffer at height at
most ``log₂ n + 3`` on directed paths against any rate-1 adversary —
matching the Ω(log n) lower bound of Theorem 3.1 within a factor 2.

The intuition (§4): when the adversary injects on the left, packets sit
at *odd* heights and flow right at full throughput (odd rule forwards on
flat); when it injects on the right, heights become *even* and the flow
freezes, so congestion spreads leftwards instead of upwards.  The rule
automatically flips between the two behaviours as heights change
parity.
"""

from __future__ import annotations

import numpy as np

from .base import PairwisePolicy

__all__ = ["OddEvenPolicy"]


class OddEvenPolicy(PairwisePolicy):
    """The Odd-Even forwarding rule (paper Algorithm 1).

    Only defined for link capacity / injection rate ``c = 1``
    (``max_capacity = 1``), exactly as in the paper.
    """

    name = "odd-even"
    locality = 1
    max_capacity = 1

    def forwards(self, h_v: np.ndarray, h_succ: np.ndarray) -> np.ndarray:
        # odd h: forward iff h_succ <= h == h_succ < h + 1; even h:
        # forward iff h_succ < h — one branch-free comparison
        return h_succ < h_v + (h_v & 1)
