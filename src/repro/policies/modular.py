"""Modular generalisation of Odd-Even — the ablation family (E15).

Odd-Even partitions heights into two residue classes mod 2 and assigns
the permissive rule ("forward on flat or downhill") to one class and
the restrictive rule ("forward only downhill") to the other.  A natural
question for the ablation study is whether the *specific* choice of
modulus 2 matters:

* ``ModularPolicy(1, permissive_residues=())`` ≡ Downhill (always
  restrictive): Ω(n).
* ``ModularPolicy(1, permissive_residues=(0,))`` ≡ Downhill-or-Flat
  (always permissive): Θ(√n) (Theorem 4.1).
* ``ModularPolicy(2, permissive_residues=(1,))`` ≡ Odd-Even: Θ(log n)
  (Theorem 4.13).
* larger moduli / other residue sets: measured by experiment E15; the
  paper's proof machinery (attachment Rules 3–4 tie parity to guardian
  *direction*) is specific to m = 2, and E15 shows empirically that the
  m = 2 alternation is what buys the exponential-cost hierarchy.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .base import PairwisePolicy
from ..errors import PolicyError

__all__ = ["ModularPolicy"]


class ModularPolicy(PairwisePolicy):
    """Forward on flat iff ``h(v) mod m`` is in a permissive set.

    A node of height ``h`` forwards iff ``h(s(v)) < h(v)``, or
    ``h(s(v)) == h(v)`` and ``h(v) mod m ∈ permissive_residues``.
    """

    locality = 1
    max_capacity = 1

    def __init__(self, modulus: int, permissive_residues: Iterable[int] = (1,)):
        if modulus < 1:
            raise PolicyError("modulus must be >= 1")
        residues = sorted({int(r) % modulus for r in permissive_residues})
        self.modulus = int(modulus)
        self.permissive_residues = tuple(residues)
        self._lookup = np.zeros(self.modulus, dtype=bool)
        for r in residues:
            self._lookup[r] = True
        res = ",".join(map(str, residues)) or "-"
        self.name = f"modular(m={modulus};flat@{res})"

    def forwards(self, h_v: np.ndarray, h_succ: np.ndarray) -> np.ndarray:
        permissive = self._lookup[h_v % self.modulus]
        return (h_succ < h_v) | (permissive & (h_succ == h_v))
