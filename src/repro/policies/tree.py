"""Algorithm 5 — the 2-local Tree policy (§5).

A straightforward generalisation of Odd-Even to directed in-trees:

    If the height ``h`` of the node is odd, forward a packet to your
    successor iff its height is at most ``h`` *and you have the highest
    priority among your siblings*; if ``h`` is even, the same with
    "strictly less than ``h``".

The priority scheme completing the algorithm: *a sibling with a higher
height has higher priority; among siblings of the same maximal height,
choose arbitrarily.*  Consequently at most one packet enters any
*intersection* (node of in-degree ≥ 2) per step, and the tree
decomposes into *lines* whose analysis reduces to the path case with
crossover matching pairs (Algorithm 6).

Reading sibling heights requires information two hops away (sibling →
parent → node), hence ``locality = 2``.  Theorem 5.11: buffers stay
O(log n); the certified constant is 2·log₂ n + O(1) because the tree
attachment scheme only tracks even-height residues.

Tie-breaking among equal-height siblings is "arbitrary" in the paper;
we make it configurable (and deterministic by default) because the
reproduction must be replayable.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from .base import ForwardingPolicy
from ..errors import PolicyError
from ..network.topology import SINK_SUCC, Topology

__all__ = ["TreeOddEvenPolicy", "select_priority_children"]

TieRule = Literal["min_id", "max_id", "round_robin"]

# below this many occupied nodes a plain dict sweep beats the stack of
# numpy calls the vectorised arbitration needs (a single adversarial
# stream on a 2000-node tree occupies ~depth nodes)
_SPARSE_CUTOFF = 64


def _priority_groups(
    heights: np.ndarray, succ: np.ndarray, occupied: np.ndarray
) -> tuple[dict[int, list[int]], dict[int, int]]:
    """Per parent: its top-height occupied children and that height.

    Candidate lists ascend in node id because ``occupied`` does, so the
    first entry is the min-id winner and the last the max-id one.
    """
    cands: dict[int, list[int]] = {}
    besth: dict[int, int] = {}
    for v, hv, p in zip(
        occupied.tolist(), heights[occupied].tolist(),
        succ[occupied].tolist(),
    ):
        if p < 0:  # the sink sends nowhere
            continue
        b = besth.get(p, 0)
        if hv > b:
            besth[p] = hv
            cands[p] = [v]
        elif hv == b:
            cands[p].append(v)
    return cands, besth


def _pick(group: list[int], tie_rule: str, rotation: int) -> int:
    if tie_rule == "min_id":
        return group[0]
    if tie_rule == "max_id":
        return group[-1]
    return group[rotation % len(group)]


def select_priority_children(
    heights: np.ndarray,
    topology: Topology,
    tie_rule: TieRule = "min_id",
    rotation: int = 0,
) -> np.ndarray:
    """For every node, the id of its highest-priority child, or -1.

    The highest-priority child is the occupied child of maximal height
    (ties per ``tie_rule``); -1 if the node has no occupied child.
    This is shared with the tree-matching certifier (Algorithm 6),
    which must reconstruct the same priority lines the policy used.

    Fully vectorised: a scatter-max over the parent array finds each
    node's best occupied-child height, then the tied candidates are
    grouped by parent with a stable argsort (candidate ids are already
    ascending, matching the order ``topology.children`` lists them) and
    the tie rule picks an offset into each group.  When only a handful
    of nodes hold packets (a single adversarial stream on a large tree)
    the numpy call overhead dwarfs the work, so a plain dict sweep over
    the occupied nodes takes over — same winners, pinned by the policy
    unit tests against the loop reference.
    """
    if tie_rule not in ("min_id", "max_id", "round_robin"):
        raise PolicyError(f"unknown tie rule {tie_rule!r}")
    n = topology.n
    heights = np.asarray(heights)
    winner = np.full(n, -1, dtype=np.int64)
    succ = topology.succ
    occupied = np.flatnonzero((succ != SINK_SUCC) & (heights > 0))
    if occupied.size == 0:
        return winner
    if occupied.size <= _SPARSE_CUTOFF:
        cands, _ = _priority_groups(heights, succ, occupied)
        for p, group in cands.items():
            winner[p] = _pick(group, tie_rule, rotation)
        return winner
    best = np.zeros(n, dtype=np.int64)
    np.maximum.at(best, succ[occupied], heights[occupied])
    top = occupied[heights[occupied] == best[succ[occupied]]]
    parents = succ[top]
    order = np.argsort(parents, kind="stable")  # groups by parent,
    top = top[order]                            # ascending id within
    group, start, size = np.unique(
        parents[order], return_index=True, return_counts=True
    )
    if tie_rule == "min_id":
        sel = start
    elif tie_rule == "max_id":
        sel = start + size - 1
    else:  # round_robin
        sel = start + rotation % size
    winner[group] = top[sel]
    return winner


class TreeOddEvenPolicy(ForwardingPolicy):
    """Odd-Even with height-priority sibling arbitration (Algorithm 5)."""

    name = "tree-odd-even"
    locality = 2
    max_capacity = 1

    def __init__(self, tie_rule: TieRule = "min_id") -> None:
        if tie_rule not in ("min_id", "max_id", "round_robin"):
            raise PolicyError(f"unknown tie rule {tie_rule!r}")
        self.tie_rule: TieRule = tie_rule
        self._rotation = 0

    def reset(self, topology: Topology) -> None:
        self._rotation = 0

    def send_mask(self, heights: np.ndarray, topology: Topology) -> np.ndarray:
        heights = np.asarray(heights)
        rotation = self._rotation
        if self.tie_rule == "round_robin":
            self._rotation += 1
        mask = np.zeros(topology.n, dtype=bool)
        # the contract guarantees heights[sink] == 0, so the occupied
        # set never contains the sink
        occupied = np.flatnonzero(heights > 0)
        if occupied.size == 0:
            return mask
        if occupied.size <= _SPARSE_CUTOFF:
            cands, besth = _priority_groups(
                heights, topology.succ, occupied
            )
            for p, group in cands.items():
                w = _pick(group, self.tie_rule, rotation)
                hw = besth[p]
                hp = heights[p]
                # odd height: forward iff parent <= h; even: strictly
                mask[w] = hp <= hw if hw & 1 else hp < hw
            return mask
        winner = select_priority_children(
            heights, topology, self.tie_rule, rotation
        )
        w = winner[winner >= 0]
        if w.size:
            h = heights[w]
            h_parent = heights[topology.succ[w]]
            # odd height: forward iff parent <= h; even: strictly below
            mask[w] = np.where(h & 1, h_parent <= h, h_parent < h)
        return mask

    def fleet_send_counts(
        self, heights: np.ndarray, topology: Topology, capacity: int
    ) -> np.ndarray | None:
        """Sibling arbitration across a whole fleet at once.

        Flattens the ``(runs, n)`` matrix into one forest of ``runs``
        disjoint trees (node ``v`` of run ``r`` becomes ``r·n + v``)
        and runs the dense arbitration of
        :func:`select_priority_children` over it: parents of different
        runs never collide, and flattened ids preserve the ascending
        within-run order the tie rules are defined over.  One rotation
        tick per call — each run sees the rotation a fresh per-run
        policy stepping in lockstep would.
        """
        if capacity != 1:
            return None
        runs, n = heights.shape
        rotation = self._rotation
        if self.tie_rule == "round_robin":
            self._rotation += 1
        succ = topology.succ
        base = (np.arange(runs, dtype=np.int64) * n)[:, None]
        succ_f = np.where(succ[None, :] >= 0, succ[None, :] + base, -1).ravel()
        hf = heights.ravel()
        counts = np.zeros(runs * n, dtype=heights.dtype)
        occupied = np.flatnonzero((succ_f >= 0) & (hf > 0))
        if occupied.size:
            best = np.zeros(runs * n, dtype=np.int64)
            np.maximum.at(best, succ_f[occupied], hf[occupied])
            top = occupied[hf[occupied] == best[succ_f[occupied]]]
            parents = succ_f[top]
            order = np.argsort(parents, kind="stable")
            top = top[order]
            _group, start, size = np.unique(
                parents[order], return_index=True, return_counts=True
            )
            if self.tie_rule == "min_id":
                sel = start
            elif self.tie_rule == "max_id":
                sel = start + size - 1
            else:  # round_robin
                sel = start + rotation % size
            w = top[sel]
            hw = hf[w]
            hp = hf[succ_f[w]]
            # odd height: forward iff parent <= h; even: strictly below
            counts[w] = np.where(hw & 1, hp <= hw, hp < hw)
        return counts.reshape(runs, n)
