"""Algorithm 5 — the 2-local Tree policy (§5).

A straightforward generalisation of Odd-Even to directed in-trees:

    If the height ``h`` of the node is odd, forward a packet to your
    successor iff its height is at most ``h`` *and you have the highest
    priority among your siblings*; if ``h`` is even, the same with
    "strictly less than ``h``".

The priority scheme completing the algorithm: *a sibling with a higher
height has higher priority; among siblings of the same maximal height,
choose arbitrarily.*  Consequently at most one packet enters any
*intersection* (node of in-degree ≥ 2) per step, and the tree
decomposes into *lines* whose analysis reduces to the path case with
crossover matching pairs (Algorithm 6).

Reading sibling heights requires information two hops away (sibling →
parent → node), hence ``locality = 2``.  Theorem 5.11: buffers stay
O(log n); the certified constant is 2·log₂ n + O(1) because the tree
attachment scheme only tracks even-height residues.

Tie-breaking among equal-height siblings is "arbitrary" in the paper;
we make it configurable (and deterministic by default) because the
reproduction must be replayable.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from .base import ForwardingPolicy
from ..errors import PolicyError
from ..network.topology import Topology

__all__ = ["TreeOddEvenPolicy", "select_priority_children"]

TieRule = Literal["min_id", "max_id", "round_robin"]


def select_priority_children(
    heights: np.ndarray,
    topology: Topology,
    tie_rule: TieRule = "min_id",
    rotation: int = 0,
) -> np.ndarray:
    """For every node, the id of its highest-priority child, or -1.

    The highest-priority child is the occupied child of maximal height
    (ties per ``tie_rule``); -1 if the node has no occupied child.
    This is shared with the tree-matching certifier (Algorithm 6),
    which must reconstruct the same priority lines the policy used.
    """
    n = topology.n
    winner = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        kids = topology.children[v]
        if not kids:
            continue
        best = -1
        best_h = 0
        candidates: list[int] = []
        for cnode in kids:
            hc = int(heights[cnode])
            if hc > best_h:
                best_h = hc
                candidates = [cnode]
            elif hc == best_h and hc > 0:
                candidates.append(cnode)
        if not candidates:
            continue
        if tie_rule == "min_id":
            best = min(candidates)
        elif tie_rule == "max_id":
            best = max(candidates)
        elif tie_rule == "round_robin":
            best = candidates[rotation % len(candidates)]
        else:  # pragma: no cover - guarded by Literal
            raise PolicyError(f"unknown tie rule {tie_rule!r}")
        winner[v] = best
    return winner


class TreeOddEvenPolicy(ForwardingPolicy):
    """Odd-Even with height-priority sibling arbitration (Algorithm 5)."""

    name = "tree-odd-even"
    locality = 2
    max_capacity = 1

    def __init__(self, tie_rule: TieRule = "min_id") -> None:
        if tie_rule not in ("min_id", "max_id", "round_robin"):
            raise PolicyError(f"unknown tie rule {tie_rule!r}")
        self.tie_rule: TieRule = tie_rule
        self._rotation = 0

    def reset(self, topology: Topology) -> None:
        self._rotation = 0

    def send_mask(self, heights: np.ndarray, topology: Topology) -> np.ndarray:
        winner = select_priority_children(
            heights, topology, self.tie_rule, self._rotation
        )
        if self.tie_rule == "round_robin":
            self._rotation += 1
        mask = np.zeros(topology.n, dtype=bool)
        for v in winner[winner >= 0]:
            v = int(v)
            h = int(heights[v])
            h_parent = int(heights[topology.succ[v]])
            if h & 1:
                mask[v] = h_parent <= h
            else:
                mask[v] = h_parent < h
        return mask
