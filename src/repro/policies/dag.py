"""DAG forwarding policies (the §6 "arbitrary routing patterns" probe).

*DAG Odd-Even* applies the two-line rule against the **lowest**
out-neighbour: among v's out-edges pick the neighbour u with minimal
height (ties towards smaller depth, then id); forward iff the parity
rule h-odd → h(u) ≤ h(v) / h-even → h(u) < h(v) passes.  Choosing the
minimum gives the rule its best chance — if it blocks, every out-edge
blocks, exactly like the single-successor case.

*DAG Greedy* forwards whenever possible to the lowest out-neighbour —
the work-conserving baseline.

Both are 1-local (heights of out-neighbours only).
"""

from __future__ import annotations

import numpy as np

from ..network.dag import DagTopology
from ..network.dag_engine import DagPolicy

__all__ = ["DagOddEvenPolicy", "DagGreedyPolicy"]


def _lowest_out_neighbour(
    v: int, heights: np.ndarray, dag: DagTopology
) -> int:
    outs = dag.out_edges[v]
    return min(outs, key=lambda u: (heights[u], dag.depth[u], u))


class DagOddEvenPolicy(DagPolicy):
    """Odd-Even towards the lowest out-neighbour."""

    name = "dag-odd-even"
    locality = 1

    def choose(self, heights: np.ndarray, dag: DagTopology) -> np.ndarray:
        targets = np.full(dag.n, -1, dtype=np.int64)
        for v in range(dag.n):
            if v == dag.sink or heights[v] == 0:
                continue
            u = _lowest_out_neighbour(v, heights, dag)
            h, hu = int(heights[v]), int(heights[u])
            if (h % 2 == 1 and hu <= h) or (h % 2 == 0 and hu < h):
                targets[v] = u
        return targets


class DagGreedyPolicy(DagPolicy):
    """Always forward, to the lowest out-neighbour."""

    name = "dag-greedy"
    locality = 1

    def choose(self, heights: np.ndarray, dag: DagTopology) -> np.ndarray:
        targets = np.full(dag.n, -1, dtype=np.int64)
        for v in range(dag.n):
            if v == dag.sink or heights[v] == 0:
                continue
            targets[v] = _lowest_out_neighbour(v, heights, dag)
        return targets
