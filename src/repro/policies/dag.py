"""DAG forwarding policies (the §6 "arbitrary routing patterns" probe).

*DAG Odd-Even* applies the two-line rule against the **lowest**
out-neighbour: among v's out-edges pick the neighbour u with minimal
height (ties towards smaller depth, then id); forward iff the parity
rule h-odd → h(u) ≤ h(v) / h-even → h(u) < h(v) passes.  Choosing the
minimum gives the rule its best chance — if it blocks, every out-edge
blocks, exactly like the single-successor case.

*DAG Greedy* forwards whenever possible to the lowest out-neighbour —
the work-conserving baseline.

Both are 1-local (heights of out-neighbours only).  ``choose`` is
vectorised over the padded out-edge arrays from
:meth:`~repro.network.dag.DagTopology.packed_out_edges`; the scalar
:func:`_lowest_out_neighbour` is kept as the pinned reference the
property suite compares against.
"""

from __future__ import annotations

import numpy as np

from ..network.dag import DagTopology
from ..network.dag_engine import DagPolicy

__all__ = ["DagOddEvenPolicy", "DagGreedyPolicy"]

_INT64_MAX = np.iinfo(np.int64).max


def _lowest_out_neighbour(
    v: int, heights: np.ndarray, dag: DagTopology
) -> int:
    """Scalar reference for the (height, depth, id) argmin."""
    outs = dag.out_edges[v]
    return min(outs, key=lambda u: (heights[u], dag.depth[u], u))


def _lowest_out_neighbours(
    heights: np.ndarray, dag: DagTopology
) -> tuple[np.ndarray, np.ndarray]:
    """Per-node (height, depth, id)-argmin over out-edges, vectorised.

    Returns ``(u, hu)``; the sink's row (no out-edges) comes back as
    ``u = 0`` with ``hu = INT64_MAX`` and must be masked by the caller.
    The staged refinement below is a lexicographic argmin: restrict to
    minimal height, then minimal depth among those, then minimal id.
    """
    pad, mask, depth_pad = dag.packed_out_edges()
    hk = np.where(mask, heights[pad], _INT64_MAX)
    hu = hk.min(axis=1)
    elig = (hk == hu[:, None]) & mask
    dk = np.where(elig, depth_pad, _INT64_MAX)
    elig &= dk == dk.min(axis=1)[:, None]
    ik = np.where(elig, pad, _INT64_MAX)
    u = ik.min(axis=1)
    u[u == _INT64_MAX] = 0  # rows with no out-edges (the sink)
    return u, hu


class DagOddEvenPolicy(DagPolicy):
    """Odd-Even towards the lowest out-neighbour."""

    name = "dag-odd-even"
    locality = 1

    def choose(self, heights: np.ndarray, dag: DagTopology) -> np.ndarray:
        heights = np.asarray(heights)
        targets = np.full(dag.n, -1, dtype=np.int64)
        occupied = heights > 0
        occupied[dag.sink] = False
        if not occupied.any():
            return targets
        u, hu = _lowest_out_neighbours(heights, dag)
        odd = (heights % 2) == 1
        forward = occupied & np.where(odd, hu <= heights, hu < heights)
        targets[forward] = u[forward]
        return targets


class DagGreedyPolicy(DagPolicy):
    """Always forward, to the lowest out-neighbour."""

    name = "dag-greedy"
    locality = 1

    def choose(self, heights: np.ndarray, dag: DagTopology) -> np.ndarray:
        heights = np.asarray(heights)
        targets = np.full(dag.n, -1, dtype=np.int64)
        occupied = heights > 0
        occupied[dag.sink] = False
        u, _ = _lowest_out_neighbours(heights, dag)
        targets[occupied] = u[occupied]
        return targets
