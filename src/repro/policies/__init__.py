"""Forwarding policies: the paper's algorithms and every baseline.

=====================  ========  ===========  =====================================
Policy                 Locality  Worst case   Source
=====================  ========  ===========  =====================================
Odd-Even               1-local   log₂ n + 3   paper Algorithm 1 / Theorem 4.13
Tree Odd-Even          2-local   O(log n)     paper Algorithm 5 / Theorem 5.11
Greedy                 0-local   Θ(n)         Rosén & Scalosub [23]
Downhill               1-local   Ω(n)         Miller & Patt-Shamir [21]
Downhill-or-Flat       1-local   Θ(√n)        paper Theorem 4.1
Forward-If-Empty       1-local   unbounded    Miller & Patt-Shamir [21]
Centralized trains     global    σ + 2        Miller & Patt-Shamir [21]
Modular(m)             1-local   measured     ablation family (experiment E15)
Height balancing       1-local   measured     undirected-path control (E11)
=====================  ========  ===========  =====================================
"""

from .base import ForwardingPolicy, PairwisePolicy, locality_respected
from .centralized import CentralizedTrainPolicy
from .dag import DagGreedyPolicy, DagOddEvenPolicy
from .downhill import DownhillOrFlatPolicy, DownhillPolicy
from .fie import ForwardIfEmptyPolicy
from .greedy import GreedyPolicy
from .modular import ModularPolicy
from .odd_even import OddEvenPolicy
from .rate_c import ScaledOddEvenPolicy
from .registry import POLICY_FACTORIES, available_policies, make_policy
from .tree import TreeOddEvenPolicy, select_priority_children
from .undirected import (
    DirectedAsUndirected,
    HeightBalancingPolicy,
    UndirectedPathPolicy,
)

__all__ = [
    "ForwardingPolicy",
    "PairwisePolicy",
    "locality_respected",
    "OddEvenPolicy",
    "TreeOddEvenPolicy",
    "select_priority_children",
    "GreedyPolicy",
    "DownhillPolicy",
    "DownhillOrFlatPolicy",
    "ForwardIfEmptyPolicy",
    "CentralizedTrainPolicy",
    "DagOddEvenPolicy",
    "DagGreedyPolicy",
    "ModularPolicy",
    "ScaledOddEvenPolicy",
    "UndirectedPathPolicy",
    "DirectedAsUndirected",
    "HeightBalancingPolicy",
    "POLICY_FACTORIES",
    "make_policy",
    "available_policies",
]
