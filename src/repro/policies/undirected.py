"""Bidirectional policies for *undirected* paths (Theorem 3.3 / E11).

Theorem 3.3 states that allowing packets to travel away from the sink
does not break the Ω(c·log n/ℓ) barrier (it only buys a constant
factor ≈ 4).  To exercise that claim we need at least one reasonable
bidirectional algorithm to attack with the recursive adversary.

The model (following Kothapalli & Scheideler [17], §1.1, adapted to our
weaker adversary): in each forwarding mini-step a node may send at most
one packet to its successor (towards the sink) *and* at most one packet
to its predecessor (away from it); each directed half of an undirected
edge has capacity 1.

Policies implement :meth:`UndirectedPathPolicy.send_directions`, which
returns a (rightwards, leftwards) pair of masks over path positions
(position 0 = far end, position n-1 = sink).  They are executed by
:class:`repro.network.engine_fast.UndirectedPathEngine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "UndirectedPathPolicy",
    "DirectedAsUndirected",
    "HeightBalancingPolicy",
]


class UndirectedPathPolicy(ABC):
    """Base class for bidirectional path policies.

    Attributes mirror :class:`repro.policies.base.ForwardingPolicy`.
    """

    name: str = "abstract-undirected"
    locality: int | None = 1
    max_capacity: int | None = 1

    def reset(self, n: int) -> None:
        """Hook called once before a run."""

    @abstractmethod
    def send_directions(
        self, heights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(right, left)`` boolean masks over positions.

        ``heights`` is indexed by path position (0 = far end); the sink
        is the last position with height pinned to 0.  ``right[i]``
        forwards a packet to position ``i+1``; ``left[i]`` to ``i-1``.
        The engine clears impossible sends (empty buffers, the sink,
        position 0 sending left) and enforces that a node holding a
        single packet cannot send in both directions.
        """


class DirectedAsUndirected(UndirectedPathPolicy):
    """Control policy: run a pairwise directed rule, never send left."""

    locality = 1

    def __init__(self, directed_policy) -> None:
        self._policy = directed_policy
        self.name = f"undirected({directed_policy.name})"

    def send_directions(self, heights):
        h_succ = np.empty_like(heights)
        h_succ[:-1] = heights[1:]
        h_succ[-1] = 0
        right = (heights > 0) & self._policy.forwards(heights, h_succ)
        right[-1] = False
        return right, np.zeros_like(right)


class HeightBalancingPolicy(UndirectedPathPolicy):
    """Odd-Even towards the sink, plus strict backpressure diffusion.

    Rightwards the rule is exactly Odd-Even.  Leftwards a node sheds a
    packet when its predecessor is lower by at least ``slack`` — the
    "balance in both directions" idea of [17] with hysteresis so that
    packets do not ping-pong (a packet sent left lands on a buffer that
    is still at least ``slack - 2`` below its source, so the pair
    cannot immediately bounce it back).
    """

    locality = 1

    def __init__(self, slack: int = 3) -> None:
        if slack < 2:
            raise ValueError("slack < 2 would allow packets to ping-pong")
        self.slack = int(slack)
        self.name = f"height-balancing(slack={slack})"

    def send_directions(self, heights):
        n = heights.size
        h_succ = np.empty_like(heights)
        h_succ[:-1] = heights[1:]
        h_succ[-1] = 0
        odd = (heights & 1) == 1
        right = (heights > 0) & np.where(
            odd, h_succ <= heights, h_succ < heights
        )
        right[-1] = False

        h_pred = np.empty_like(heights)
        h_pred[1:] = heights[:-1]
        h_pred[0] = 2**31  # sentinel far above any height: end never sends left
        left = (heights > 0) & (h_pred + self.slack <= heights)
        left[0] = False
        left[-1] = False  # the sink consumes; it never re-emits
        return right, left
