"""Greedy (work-conserving) baseline.

A greedy policy forwards whenever it has something to forward.  For
information gathering on a path all greedy protocols coincide from the
throughput point of view (§1.1), and Rosén & Scalosub [23] show greedy
needs Θ(n)-sized buffers to guarantee no loss — the linear baseline the
paper's Θ(log n) result is measured against (experiments E1, E6).

Unlike the parity policies, greedy is well-defined for any link
capacity ``c``: forward ``min(h(v), c)`` packets.
"""

from __future__ import annotations

import numpy as np

from .base import PairwisePolicy
from ..network.topology import Topology

__all__ = ["GreedyPolicy"]


class GreedyPolicy(PairwisePolicy):
    """Forward whenever the buffer is non-empty (work conservation)."""

    name = "greedy"
    locality = 0  # needs no neighbour information at all
    max_capacity = None

    def forwards(self, h_v: np.ndarray, h_succ: np.ndarray) -> np.ndarray:
        return np.ones_like(h_v, dtype=bool)

    def send_counts(
        self, heights: np.ndarray, topology: Topology, capacity: int
    ) -> np.ndarray:
        self.check_capacity(capacity)
        counts = np.minimum(heights, capacity).astype(np.int64)
        counts[topology.sink] = 0
        return counts

    def fleet_send_counts(
        self, heights: np.ndarray, topology: Topology, capacity: int
    ) -> np.ndarray:
        counts = np.minimum(heights, capacity).astype(heights.dtype)
        counts[:, topology.sink] = 0
        return counts
