"""Forwarding-policy abstractions.

A *policy* (the paper's "scheduling policy" / "queueing discipline")
decides, in every forwarding mini-step, which nodes send a packet to
their successor.  All decisions in a step are simultaneous and are
functions of the same height snapshot — the defining feature of the
synchronous model of §2.

Two decision granularities are supported:

* :meth:`ForwardingPolicy.send_mask` — which nodes forward one packet
  (capacity c = 1, the setting of the paper's algorithms);
* :meth:`ForwardingPolicy.send_counts` — how many packets each node
  forwards (for capacity c > 1 baselines and lower-bound experiments).

Locality is *declared* metadata (``locality`` attribute).  Rather than
slowing the hot loop with access guards, the test-suite verifies the
declaration behaviourally: :func:`locality_respected` perturbs heights
outside a node's ℓ-ball and asserts the node's decision is unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import PolicyError
from ..network.topology import Topology

__all__ = [
    "ForwardingPolicy",
    "PairwisePolicy",
    "locality_respected",
]


class ForwardingPolicy(ABC):
    """Base class for all schedulers.

    Attributes
    ----------
    name:
        Stable identifier used by the registry, CLI and reports.
    locality:
        ℓ such that decisions depend only on heights within hop
        distance ℓ; ``None`` marks a centralized (global-view) policy.
    max_capacity:
        Largest link capacity the policy is defined for (``None`` means
        any).  The paper's local algorithms assume ``c = 1``.
    """

    name: str = "abstract"
    locality: int | None = None
    max_capacity: int | None = None

    def reset(self, topology: Topology) -> None:
        """Hook called once before a run; stateful policies clear here."""

    def observe_injections(self, sites: tuple[int, ...]) -> None:
        """Called by the engine each step with that step's injection
        sites, before decisions are requested.

        Local policies ignore this (their information is the heights in
        their ℓ-ball); the *centralized* train algorithm of [21] is
        defined in terms of the injected packet's path and overrides it.
        """

    def check_capacity(self, capacity: int) -> None:
        """Raise :class:`PolicyError` if ``capacity`` is unsupported."""
        if capacity < 1:
            raise PolicyError(f"capacity must be >= 1, got {capacity}")
        if self.max_capacity is not None and capacity > self.max_capacity:
            raise PolicyError(
                f"policy {self.name!r} is defined for c <= "
                f"{self.max_capacity}, got c = {capacity}"
            )

    @abstractmethod
    def send_mask(self, heights: np.ndarray, topology: Topology) -> np.ndarray:
        """Boolean array: ``mask[v]`` iff node ``v`` forwards one packet.

        ``heights`` is the decision-time snapshot (length ``topology.n``,
        with ``heights[sink] == 0``).  Implementations must never mark
        the sink or an empty node as sending.
        """

    def send_counts(
        self, heights: np.ndarray, topology: Topology, capacity: int
    ) -> np.ndarray:
        """Integer array of packets forwarded per node (≤ capacity).

        The default is only valid for ``capacity == 1``; capacity-aware
        policies (e.g. greedy) override it.
        """
        self.check_capacity(capacity)
        if capacity != 1:
            raise PolicyError(
                f"policy {self.name!r} has no multi-packet rule; "
                "override send_counts for c > 1"
            )
        return self.send_mask(heights, topology).astype(np.int64)

    def fleet_send_counts(
        self, heights: np.ndarray, topology: Topology, capacity: int
    ) -> np.ndarray | None:
        """Cross-run decision: ``(runs, n)`` send counts, or ``None``.

        ``heights`` is a ``(runs, n)`` matrix of independent
        configurations sharing one topology; row ``r`` of the result
        must equal what :meth:`send_counts` returns for row ``r`` alone
        — the contract :class:`repro.network.fleet_engine.FleetEngine`
        relies on to advance a whole sweep in lockstep.  Returning
        ``None`` (the default) declares the policy not row-vectorisable
        and makes the fleet fall back to per-run engines.

        Stateful-but-lockstep policies (round-robin tie rotation) must
        advance their state exactly once per call, mirroring one
        :meth:`send_mask` call on each of ``runs`` fresh per-run policy
        instances that all share the same clock.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        loc = "centralized" if self.locality is None else f"{self.locality}-local"
        return f"<{type(self).__name__} {self.name!r} ({loc})>"


class PairwisePolicy(ForwardingPolicy):
    """A 1-local policy whose rule compares ``h(v)`` with ``h(s(v))``.

    Subclasses implement :meth:`forwards` as a vectorised predicate.
    This covers Greedy, Downhill, Downhill-or-Flat, FIE and Odd-Even —
    every local path algorithm discussed in §4 — and runs unchanged on
    trees (where it becomes the 1-local strawman of experiment E8,
    since it performs no sibling arbitration).
    """

    locality: int | None = 1

    @abstractmethod
    def forwards(self, h_v: np.ndarray, h_succ: np.ndarray) -> np.ndarray:
        """Vectorised rule: does a node of height ``h_v`` forward to a
        successor of height ``h_succ``?  Emptiness (``h_v == 0``) is
        handled by the caller and need not be checked here."""

    def send_mask(self, heights: np.ndarray, topology: Topology) -> np.ndarray:
        succ = topology.succ
        # heights[succ] is junk for the sink (succ == -1 wraps); masked out.
        h_succ = heights[succ]
        mask = (heights > 0) & self.forwards(heights, h_succ)
        mask[topology.sink] = False
        return mask

    def fleet_send_counts(
        self, heights: np.ndarray, topology: Topology, capacity: int
    ) -> np.ndarray | None:
        """Row-vectorised pairwise rule: the elementwise predicate
        applies unchanged to a ``(runs, n)`` matrix."""
        if capacity != 1:
            return None
        if topology.is_canonical_path:
            # slice shift beats a fancy gather on the hot fleet path;
            # the sink column is junk either way and masked below
            h_succ = np.empty_like(heights)
            h_succ[:, :-1] = heights[:, 1:]
            h_succ[:, -1] = 0
        else:
            h_succ = heights[:, topology.succ]
        mask = (heights > 0) & self.forwards(heights, h_succ)
        mask[:, topology.sink] = False
        return mask.astype(heights.dtype)


def locality_respected(
    policy: ForwardingPolicy,
    topology: Topology,
    heights: np.ndarray,
    node: int,
    rng: np.random.Generator,
    trials: int = 8,
    max_height: int = 12,
) -> bool:
    """Behavioural locality check used by the test-suite.

    Randomly rewrites heights *outside* ``node``'s ℓ-ball and reports
    whether the node's decision ever changed.  Centralized policies
    (``locality is None``) vacuously pass.
    """
    if policy.locality is None:
        return True
    ball = topology.ball(node, policy.locality)
    outside = np.asarray(
        [v for v in range(topology.n) if v not in ball and v != topology.sink],
        dtype=np.int64,
    )
    base = policy.send_mask(heights, topology)[node]
    if outside.size == 0:
        return True
    for _ in range(trials):
        h = heights.copy()
        h[outside] = rng.integers(0, max_height + 1, size=outside.size)
        h[topology.sink] = 0
        if policy.send_mask(h, topology)[node] != base:
            return False
    return True
