"""Downhill and Downhill-or-Flat baselines (§4, Theorem 4.1).

*Downhill* (from Miller & Patt-Shamir [21]) forwards only when the
successor's buffer is *strictly* smaller; [21] shows it needs Ω(n)
buffers in the worst case (packets freeze on a flat profile, so a
left-end injection stream piles into a staircase).

*Downhill-or-Flat* relaxes the rule to "equal or smaller".  Theorem 4.1
states this already improves the worst case to Θ(√n) — the stepping
stone between the linear baselines and the Θ(log n) Odd-Even rule.
Experiment E5 exhibits both directions of the Θ(√n) bound.
"""

from __future__ import annotations

import numpy as np

from .base import PairwisePolicy

__all__ = ["DownhillPolicy", "DownhillOrFlatPolicy"]


class DownhillPolicy(PairwisePolicy):
    """Forward iff ``h(s(v)) < h(v)`` (strict descent). Ω(n) worst case."""

    name = "downhill"
    locality = 1
    max_capacity = 1

    def forwards(self, h_v: np.ndarray, h_succ: np.ndarray) -> np.ndarray:
        return h_succ < h_v


class DownhillOrFlatPolicy(PairwisePolicy):
    """Forward iff ``h(s(v)) <= h(v)``. Θ(√n) worst case (Theorem 4.1)."""

    name = "downhill-or-flat"
    locality = 1
    max_capacity = 1

    def forwards(self, h_v: np.ndarray, h_succ: np.ndarray) -> np.ndarray:
        return h_succ <= h_v
