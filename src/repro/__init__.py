"""repro — reproduction of *Optimal Local Buffer Management for
Information Gathering with Adversarial Traffic* (Dobrev, Lafond,
Narayanan, Opatrny; SPAA 2017).

A complete, from-scratch implementation of the paper's system:

* the synchronous adversarial-queuing substrate of §2 (paths, trees,
  rate-c adversaries, two-mini-step rounds);
* the Odd-Even algorithm (Algorithm 1, Theorem 4.13) and the Tree
  algorithm (Algorithm 5, Theorem 5.11), plus every baseline the paper
  compares against (Greedy, Downhill, Downhill-or-Flat, FIE, the
  centralized train algorithm of Miller & Patt-Shamir);
* the Theorem 3.1 lower-bound adversary, implemented literally with
  engine rollback;
* the proof machinery — balanced matchings and attachment schemes —
  as a runtime certifier of the log₂ n + 3 bound;
* analysis, ASCII visualisation, and an experiment harness that
  regenerates every theorem-level claim (see EXPERIMENTS.md).

Quickstart::

    import repro

    engine = repro.PathEngine(
        1024, repro.OddEvenPolicy(), repro.SeesawAdversary()
    )
    engine.run(20_000)
    assert engine.max_height <= repro.odd_even_upper_bound(1024)
"""

from .adversaries import (
    Adversary,
    AlternatingAdversary,
    AmplifiedAdversary,
    AttackReport,
    BackfillAdversary,
    FarEndAdversary,
    FixedNodeAdversary,
    HeavyBranchAdversary,
    HotSpotAdversary,
    LeafSweepAdversary,
    MaxHeightChaserAdversary,
    MixtureAdversary,
    NullAdversary,
    OnOffAdversary,
    PhasedAdversary,
    PlateauAdversary,
    PressureAdversary,
    PreSinkAdversary,
    RecordingAdversary,
    RecursiveLowerBoundAttack,
    ReplayAdversary,
    RoundRobinAdversary,
    ScheduleAdversary,
    SeesawAdversary,
    SpiderWaveAdversary,
    TokenBucketAdversary,
    TreeSeesawAdversary,
    UniformRandomAdversary,
)
from .core import (
    AttachmentScheme,
    CertificateReport,
    OddEvenCertifier,
    TreeCertificateReport,
    TreeCertifier,
    certify_path_run,
    certify_tree_run,
    centralized_upper_bound,
    corollary_3_2_lower_bound,
    downhill_or_flat_reference,
    greedy_reference,
    odd_even_upper_bound,
    path_height_bound_from_residues,
    path_residue_count,
    theorem_3_1_lower_bound,
    tree_residue_count,
    tree_upper_bound,
)
from .errors import (
    AttachmentError,
    BufferOverflow,
    CertificationError,
    FaultError,
    MatchingError,
    PolicyError,
    ReproError,
    SimulationError,
    TopologyError,
)
from .network import (
    DagEngine,
    DagTopology,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    LossLedger,
    Overflow,
    PathEngine,
    RandomFaults,
    RunResult,
    Simulator,
    Topology,
    TraceRecorder,
    UndirectedPathEngine,
    balanced_tree,
    broom,
    caterpillar,
    diamond_grid,
    from_parent_array,
    layered_dag,
    tree_with_shortcuts,
    path,
    random_tree,
    run_with_recovery,
    spider,
)
from .policies import (
    CentralizedTrainPolicy,
    DagGreedyPolicy,
    DagOddEvenPolicy,
    ScaledOddEvenPolicy,
    DirectedAsUndirected,
    DownhillOrFlatPolicy,
    DownhillPolicy,
    ForwardIfEmptyPolicy,
    ForwardingPolicy,
    GreedyPolicy,
    HeightBalancingPolicy,
    ModularPolicy,
    OddEvenPolicy,
    TreeOddEvenPolicy,
    available_policies,
    make_policy,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # network
    "PathEngine",
    "UndirectedPathEngine",
    "Simulator",
    "RunResult",
    "Topology",
    "TraceRecorder",
    "path",
    "spider",
    "balanced_tree",
    "caterpillar",
    "broom",
    "random_tree",
    "from_parent_array",
    "DagTopology",
    "DagEngine",
    "layered_dag",
    "diamond_grid",
    "tree_with_shortcuts",
    # robustness / fault injection
    "Overflow",
    "LossLedger",
    "FaultKind",
    "FaultEvent",
    "RandomFaults",
    "FaultPlan",
    "FaultInjector",
    "run_with_recovery",
    # policies
    "ForwardingPolicy",
    "OddEvenPolicy",
    "TreeOddEvenPolicy",
    "GreedyPolicy",
    "DownhillPolicy",
    "DownhillOrFlatPolicy",
    "ForwardIfEmptyPolicy",
    "CentralizedTrainPolicy",
    "ModularPolicy",
    "ScaledOddEvenPolicy",
    "DagOddEvenPolicy",
    "DagGreedyPolicy",
    "HeightBalancingPolicy",
    "DirectedAsUndirected",
    "make_policy",
    "available_policies",
    # adversaries
    "Adversary",
    "AlternatingAdversary",
    "AmplifiedAdversary",
    "MixtureAdversary",
    "NullAdversary",
    "FixedNodeAdversary",
    "FarEndAdversary",
    "PreSinkAdversary",
    "ScheduleAdversary",
    "PhasedAdversary",
    "RoundRobinAdversary",
    "UniformRandomAdversary",
    "HotSpotAdversary",
    "OnOffAdversary",
    "TokenBucketAdversary",
    "SeesawAdversary",
    "PressureAdversary",
    "PlateauAdversary",
    "MaxHeightChaserAdversary",
    "BackfillAdversary",
    "LeafSweepAdversary",
    "HeavyBranchAdversary",
    "SpiderWaveAdversary",
    "TreeSeesawAdversary",
    "RecursiveLowerBoundAttack",
    "AttackReport",
    "RecordingAdversary",
    "ReplayAdversary",
    # core / bounds / certification
    "AttachmentScheme",
    "OddEvenCertifier",
    "CertificateReport",
    "certify_path_run",
    "TreeCertifier",
    "TreeCertificateReport",
    "certify_tree_run",
    "theorem_3_1_lower_bound",
    "corollary_3_2_lower_bound",
    "odd_even_upper_bound",
    "tree_upper_bound",
    "tree_residue_count",
    "path_residue_count",
    "path_height_bound_from_residues",
    "downhill_or_flat_reference",
    "greedy_reference",
    "centralized_upper_bound",
    # errors
    "ReproError",
    "TopologyError",
    "SimulationError",
    "PolicyError",
    "CertificationError",
    "MatchingError",
    "AttachmentError",
    "BufferOverflow",
    "FaultError",
]
