"""ASCII rendering for single-sink DAGs (E17 artefacts).

Draws the DAG by depth layer with per-node heights and the edge lists —
enough to read off where congestion sits and how much path diversity a
family offers.
"""

from __future__ import annotations

import numpy as np

from ..network.dag import DagTopology

__all__ = ["render_dag", "render_dag_profile"]


def render_dag(dag: DagTopology, heights: np.ndarray | None = None) -> str:
    """Layered listing: one row per shortest-path depth."""
    by_depth: dict[int, list[int]] = {}
    for v in range(dag.n):
        by_depth.setdefault(int(dag.depth[v]), []).append(v)
    lines = [
        f"single-sink DAG: {dag.n} nodes, {dag.edge_count} edges, "
        f"depth {int(dag.depth.max())}"
    ]
    for d in sorted(by_depth, reverse=True):
        cells = []
        for v in sorted(by_depth[d]):
            h = f"(h={int(heights[v])})" if heights is not None else ""
            outs = ",".join(f"n{u}" for u in dag.out_edges[v])
            arrow = f"->[{outs}]" if outs else " (sink)"
            cells.append(f"n{v}{h}{arrow}")
        lines.append(f"  depth {d:>2d}: " + "  ".join(cells))
    return "\n".join(lines)


def render_dag_profile(dag: DagTopology, heights: np.ndarray) -> str:
    """Per-depth occupancy summary (total and max height per layer)."""
    heights = np.asarray(heights, dtype=np.int64)
    lines = ["occupancy by depth layer:"]
    for d in sorted(set(int(x) for x in dag.depth), reverse=True):
        members = np.flatnonzero(dag.depth == d)
        layer = heights[members]
        bar = "#" * int(layer.sum())
        lines.append(
            f"  depth {d:>2d}: total={int(layer.sum()):>3d} "
            f"max={int(layer.max()):>2d} {bar}"
        )
    return "\n".join(lines)
