"""Regenerate the paper's Figure 3: tree matchings with crossovers.

Draws the round's line decomposition and matching from live certifier
state: each priority line on its own row, blocked intersections marked,
crossover pairs listed with their tips — the content of Figure 3
produced from an actual Algorithm 6 run.
"""

from __future__ import annotations

import numpy as np

from ..core.tree_matching import LineDecomposition, TreeMatching
from ..network.topology import Topology

__all__ = ["render_tree", "render_tree_matching"]


def render_tree(topology: Topology, heights: np.ndarray | None = None) -> str:
    """Indented tree drawing rooted at the sink (heights annotated)."""
    lines: list[str] = []

    def rec(v: int, depth: int) -> None:
        h = f" h={int(heights[v])}" if heights is not None else ""
        tag = " (sink)" if v == topology.sink else ""
        lines.append("  " * depth + f"n{v}{tag}{h}")
        for c in topology.children[v]:
            rec(c, depth + 1)

    rec(topology.sink, 0)
    return "\n".join(lines)


def render_tree_matching(
    topology: Topology,
    decomposition: LineDecomposition,
    matching: TreeMatching,
    heights: np.ndarray,
) -> str:
    """Figure 3 style: lines, the drain, and all (crossover) pairs."""
    out: list[str] = ["priority lines (start → end):"]
    for i, line in enumerate(decomposition.lines):
        tag = "  <- drain" if i == decomposition.drain else ""
        end_succ = int(topology.succ[line[-1]])
        blocked = (
            f" (blocks at n{end_succ})"
            if i != decomposition.drain and end_succ != -1
            else ""
        )
        nodes = " -> ".join(f"n{v}(h={int(heights[v])})" for v in line)
        out.append(f"  L{i}: {nodes}{blocked}{tag}")
    out.append("matching:")
    for p in matching.pairs:
        if p.crossover:
            out.append(
                f"  crossover (d=n{p.down}, u=n{p.up}) via tip n{p.tip}"
            )
        else:
            out.append(f"  pair (d=n{p.down}, u=n{p.up})")
    if matching.unmatched is not None:
        out.append(
            f"  unmatched: n{matching.unmatched} "
            f"({matching.unmatched_kind.name.lower()})"
        )
    return "\n".join(out)
