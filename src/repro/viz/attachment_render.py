"""Regenerate the paper's Figure 1 / Figure 2 from live proof state.

Figure 1 shows a node with its packets, available slots and attached
residues; Figure 2 shows before/after states of ``processPair``.  Both
are re-created as text drawings directly from an
:class:`~repro.core.attachment.AttachmentScheme`, so the renders are
*evidence* (they depict actual certified state), not hand-drawn
illustrations.
"""

from __future__ import annotations

import numpy as np

from ..core.attachment import AttachmentScheme, Slot
from ..core.matching import BalancedMatching

__all__ = ["render_node_attachments", "render_configuration",
           "render_pair_processing"]


def render_node_attachments(
    scheme: AttachmentScheme, heights: np.ndarray, node: int
) -> str:
    """Figure 1 style: one node's packets, slots and residues.

    Each packet ``x[i]`` (i ≥ 3) is drawn with its slots
    ``x[i, 1..i-2]`` and the node attached to each slot (``·`` marks an
    untracked slot of the even-only tree scheme).
    """
    h = int(heights[node])
    lines = [f"node {node} (height {h})"]
    if h < 3:
        lines.append("  no packets with slots (height < 3)")
        return "\n".join(lines)
    for i in range(h, 2, -1):
        cells = []
        for j in range(1, i - 1):
            if scheme.even_only and j % 2 != 0:
                cells.append(f"[{j}:·]")
                continue
            res = scheme.residue_at(Slot(node, i, j))
            cells.append(f"[{j}:{'∅' if res is None else f'n{res}'}]")
        lines.append(f"  packet {i}: " + " ".join(cells))
    for i in (2, 1):
        if i <= h:
            lines.append(f"  packet {i}: (no slots)")
    return "\n".join(lines)


def render_configuration(
    scheme: AttachmentScheme,
    heights: np.ndarray,
    *,
    highlight: tuple[int, ...] = (),
) -> str:
    """A full-configuration drawing: heights row + attachment arrows.

    Nodes are positions left→right (far end → sink side); residues are
    shown as ``y→x[i,j]`` arrows under the profile.  Matches the visual
    content of the paper's Figure 2 panels.
    """
    h = np.asarray(heights, dtype=np.int64)
    head = []
    for p, v in enumerate(h):
        mark = "*" if p in highlight else " "
        head.append(f"{mark}{v}")
    lines = ["pos:    " + " ".join(f"{p:>2d}" for p in range(h.size))]
    lines.append("height: " + " ".join(f"{c:>2s}" for c in head))
    arrows = [
        f"  n{y} (h={h[y]}) guarded by n{slot.node}[{slot.packet},{slot.level}]"
        for slot, y in sorted(scheme, key=lambda kv: kv[1])
    ]
    if arrows:
        lines.append("residues:")
        lines.extend(arrows)
    else:
        lines.append("residues: (none)")
    return "\n".join(lines)


def render_pair_processing(
    before_scheme: AttachmentScheme,
    before_heights: np.ndarray,
    after_scheme: AttachmentScheme,
    after_heights: np.ndarray,
    matching: BalancedMatching,
) -> str:
    """Figure 2 style: the state before and after processing a round's
    matching, with the matched pairs marked ``(down,up)``."""
    marked = tuple(
        p for pair in matching.pairs for p in (pair.down, pair.up)
    )
    pair_desc = ", ".join(
        f"({p.down},{p.up})" + ("" if p.down < p.up else " [up-down]")
        for p in matching.pairs
    ) or "(no pairs)"
    parts = [
        "BEFORE:",
        render_configuration(before_scheme, before_heights, highlight=marked),
        f"matching pairs: {pair_desc}"
        + (f", unmatched: {matching.unmatched}" if matching.unmatched is not None else ""),
        "",
        "AFTER:",
        render_configuration(after_scheme, after_heights, highlight=marked),
    ]
    return "\n".join(parts)
