"""ASCII charts (no plotting libraries are available offline).

Three chart kinds cover everything the experiments report:

* :func:`height_profile` — a bar chart of the current configuration,
  the view used throughout the paper's figures;
* :func:`series_plot` — y-vs-x scatter for scaling figures (optionally
  log₂-scaled x), with multiple labelled series;
* :func:`sparkline` — a one-line occupancy history.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

__all__ = ["height_profile", "series_plot", "sparkline"]

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def height_profile(
    heights: Sequence[int],
    *,
    max_rows: int = 12,
    label: str | None = None,
) -> str:
    """Vertical bar chart of a height configuration.

    Positions run left (far end) to right (sink side); each column is
    one node.  If the tallest buffer exceeds ``max_rows`` the chart is
    re-scaled and annotated.
    """
    h = np.asarray(heights, dtype=np.int64)
    if h.size == 0:
        return "(empty configuration)"
    peak = int(h.max())
    scale = 1
    if peak > max_rows:
        scale = math.ceil(peak / max_rows)
    rows = max(1, math.ceil(peak / scale)) if peak > 0 else 1
    lines: list[str] = []
    if label:
        lines.append(label)
    for r in range(rows, 0, -1):
        threshold = r * scale
        row = "".join("█" if v >= threshold else " " for v in h)
        lines.append(f"{threshold:>4d} |{row}|")
    lines.append("     +" + "-" * h.size + "+")
    if scale > 1:
        lines.append(f"     (1 row = {scale} packets)")
    return "\n".join(lines)


def sparkline(values: Sequence[int | float]) -> str:
    """One-line mini chart of a series (e.g. max height over time)."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return ""
    lo, hi = float(v.min()), float(v.max())
    if hi == lo:
        return _SPARK_CHARS[1] * v.size
    idx = ((v - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def series_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 18,
    log2_x: bool = False,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Scatter plot of one or more named series on shared axes.

    Each series is an ``(xs, ys)`` pair; series markers cycle through
    ``*+ox#%&@``.  With ``log2_x`` the x axis is log₂-scaled — the
    natural axis for the paper's "max height vs log n" figures.
    """
    markers = "*+ox#%&@"
    pts: list[tuple[float, float, str]] = []
    legend: list[str] = []
    for i, (name, (xs, ys)) in enumerate(series.items()):
        m = markers[i % len(markers)]
        legend.append(f"{m} = {name}")
        for x, y in zip(xs, ys):
            fx = math.log2(x) if log2_x else float(x)
            pts.append((fx, float(y), m))
    if not pts:
        return "(no data)"

    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for _ in range(height)]
    for fx, fy, m in pts:
        col = int((fx - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((fy - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = m

    lines: list[str] = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        y_val = y_hi - (y_hi - y_lo) * r / (height - 1)
        prefix = f"{y_val:>8.1f} |" if r % 3 == 0 else "         |"
        lines.append(prefix + "".join(row))
    lines.append("         +" + "-" * width)
    x_axis = f"{x_lo:.1f}".ljust(width // 2) + f"{x_hi:.1f}".rjust(width // 2)
    lines.append("          " + x_axis)
    x_name = f"log2({x_label})" if log2_x else x_label
    lines.append(f"          x: {x_name}, y: {y_label}")
    lines.extend("          " + l for l in legend)
    return "\n".join(lines)
