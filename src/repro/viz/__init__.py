"""Text-based visualisation: ASCII charts and re-renders of the
paper's Figures 1–3 from live certifier state."""

from .ascii import height_profile, series_plot, sparkline
from .dag_render import render_dag, render_dag_profile
from .attachment_render import (
    render_configuration,
    render_node_attachments,
    render_pair_processing,
)
from .tree_render import render_tree, render_tree_matching

__all__ = [
    "height_profile",
    "series_plot",
    "sparkline",
    "render_dag",
    "render_dag_profile",
    "render_configuration",
    "render_node_attachments",
    "render_pair_processing",
    "render_tree",
    "render_tree_matching",
]
